//! Influence functions of training nodes on GNN behaviour (§VI-A).
//!
//! Implements Eqs. (8)–(12) of the paper:
//!
//! * the influence of a training node on the parameters,
//!   `I_θ(v) = H⁻¹ ∇_θ L(v)`, via Hessian-vector products (central finite
//!   differences of the hand-derived gradient) and a damped conjugate-gradient
//!   solver — the standard Koh & Liang recipe, no explicit Hessian is ever
//!   materialised;
//! * the influence of a training node on an *interested function* `f`
//!   (utility, `f_bias`, `f_risk`): `I_f(w_v) = −∇_θ f(θ*)ᵀ H⁻¹ ∇_θ L(v)`,
//!   computed with the adjoint trick (one CG solve per `f`, then one dot
//!   product per node);
//! * the Pearson correlation between `I_fbias` and `I_frisk` (Table II).

#![forbid(unsafe_code)]

mod engine;
mod gradients;
mod hvp;
mod lissa;
mod risk_grad;

pub use engine::{
    compute_influences, compute_influences_lissa, influence_from_s_f, influence_on,
    InfluenceConfig, InfluenceSet,
};
pub use gradients::{
    bias_grad_wrt_params, node_loss_grad, risk_grad_wrt_params, training_loss_grad,
    training_loss_grad_ws,
};
pub use hvp::{
    conjugate_gradient, hessian_vector_product, hessian_vector_product_with, HvpScratch,
};
pub use lissa::{lissa_influence_on, LissaConfig};
pub use ppfr_linalg::pearson;
pub use risk_grad::{sq_risk_gradient_wrt_probs, sq_risk_score};
