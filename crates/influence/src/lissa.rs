//! LiSSA — stochastic inverse-Hessian-vector products (Agarwal et al., 2017).
//!
//! The exact engine ([`crate::influence_on`]) solves
//! `s_f = (H + λI)⁻¹ ∇_θ f` with conjugate gradient over *full-batch*
//! Hessian-vector products: every CG iteration touches all labelled nodes.
//! At large `n` that is the dominant influence cost, so this module provides
//! the standard stochastic alternative — a truncated Neumann series with
//! mini-batch HVPs:
//!
//! ```text
//! x_0 = g,   x_{j+1} = g + (I − A_j / c) x_j,   A_j = H_{B_j} + λI
//! s_f ≈ x_T / c
//! ```
//!
//! where `B_j` is a per-iteration mini-batch of training nodes, `c` a scale
//! chosen so every eigenvalue of `A/c` lies in `(0, 2)` (estimated by
//! deterministic power iteration when not given), and the final estimate is
//! averaged over [`LissaConfig::samples`] independent chains.  Each HVP runs
//! through the same persistent [`HvpScratch`] the CG path uses, and the
//! per-node dot-product tail is the shared
//! [`influence_from_s_f`](crate::influence_from_s_f), so the two estimators
//! differ only in how they solve the linear system.
//!
//! Everything is deterministic in `(LissaConfig::seed, chain, iteration)` —
//! the batch draws use seeded `StdRng` streams, never ambient randomness.
//!
//! # Accuracy (documented tolerance)
//!
//! With full batches (`batch = 0`), damping large enough that `H + λI` is
//! positive definite, and depth `T` in the hundreds, LiSSA agrees with the
//! exact CG solve to a few percent relative error and preserves the top-k
//! influence ranking — pinned by this crate's `lissa_pinning` proptest at
//! relative ℓ2 error ≤ 5·10⁻² and identical top-3 rankings.  Mini-batch
//! estimates (`batch > 0`) trade that tolerance for per-iteration cost
//! `O(batch)`; they remain strongly rank-correlated with the exact scores
//! but are *not* within the pinned tolerance — the deviation from the
//! paper's exact protocol is documented in PAPER.md.

use crate::{hessian_vector_product_with, influence_from_s_f, HvpScratch, InfluenceConfig};
use ppfr_gnn::{AnyModel, GraphContext};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters of the LiSSA estimator.
#[derive(Debug, Clone)]
pub struct LissaConfig {
    /// Damping λ added to the Hessian (`H + λI`); must make the damped
    /// Hessian positive definite for the Neumann series to converge.
    pub damping: f64,
    /// Finite-difference step for the Hessian-vector products.
    pub fd_step: f64,
    /// Truncation depth `T` of the Neumann recursion.
    pub depth: usize,
    /// Spectral scale `c`; `0.0` selects it automatically via deterministic
    /// power iteration (`1.3 ×` the dominant-eigenvalue estimate).
    pub scale: f64,
    /// Mini-batch size of each HVP; `0` uses the full training set.
    pub batch: usize,
    /// Number of independent chains averaged into the final estimate.
    pub samples: usize,
    /// Master seed of the batch-draw streams.
    pub seed: u64,
}

impl Default for LissaConfig {
    fn default() -> Self {
        Self {
            damping: 0.5,
            fd_step: 1e-4,
            depth: 120,
            scale: 0.0,
            batch: 0,
            samples: 1,
            seed: 0,
        }
    }
}

impl LissaConfig {
    /// A LiSSA configuration matching an exact-engine [`InfluenceConfig`]
    /// (same damping and FD step), with the given depth.
    pub fn from_influence(cfg: &InfluenceConfig, depth: usize) -> Self {
        Self {
            damping: cfg.damping,
            fd_step: cfg.fd_step,
            depth,
            ..Self::default()
        }
    }
}

/// The per-iteration mini-batch `B_j` of chain `chain`: a seeded shuffle of
/// the training ids, truncated to `batch` and re-sorted (ascending node id)
/// so the mean-loss gradient sums in a canonical order.  `batch = 0` (or
/// `batch ≥ n`) returns the full set.
fn draw_batch(train_ids: &[usize], batch: usize, seed: u64, chain: u64, iter: u64) -> Vec<usize> {
    if batch == 0 || batch >= train_ids.len() {
        return train_ids.to_vec();
    }
    // Distinct, well-separated stream per (chain, iteration).
    let stream =
        seed ^ chain.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ iter.wrapping_mul(0xd1b5_4a32_d192_ed03);
    let mut rng = StdRng::seed_from_u64(stream);
    let mut pool: Vec<usize> = train_ids.to_vec();
    pool.shuffle(&mut rng);
    pool.truncate(batch);
    pool.sort_unstable();
    pool
}

/// Deterministic power-iteration estimate of the spectral scale `c`: the
/// dominant eigenvalue of `H + λI` (full-batch HVPs from a fixed uniform
/// start vector), inflated by 1.3× so `‖A/c‖ < 1` holds with margin.
fn auto_scale(
    scratch: &mut HvpScratch,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    dim: usize,
    cfg: &LissaConfig,
) -> f64 {
    let mut v = vec![1.0 / (dim as f64).sqrt(); dim];
    let mut lambda = cfg.damping.max(1e-6);
    for _ in 0..8 {
        let hv = hessian_vector_product_with(
            scratch,
            ctx,
            labels,
            train_ids,
            &v,
            cfg.fd_step,
            cfg.damping,
        );
        let norm = hv.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm <= f64::EPSILON {
            break;
        }
        lambda = norm;
        for (vi, hvi) in v.iter_mut().zip(hv.iter()) {
            *vi = hvi / norm;
        }
    }
    (1.3 * lambda).max(cfg.damping.max(1e-6))
}

/// Stochastic LiSSA estimate of the influence of every training node on the
/// interested function with parameter gradient `grad_f`:
/// `I_f(w_v) ≈ −s_f · ∇_θ L(v)` with `s_f` from the truncated mini-batch
/// Neumann series.  Drop-in alternative to [`crate::influence_on`]; see the
/// module docs for the accuracy contract.
pub fn lissa_influence_on(
    model: &AnyModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    grad_f: &[f64],
    cfg: &LissaConfig,
) -> Vec<f64> {
    let _span = ppfr_telemetry::span!("influence_lissa");
    assert!(cfg.depth > 0, "LiSSA depth must be positive");
    let dim = grad_f.len();
    let mut scratch = HvpScratch::new(model);
    let scale = if cfg.scale > 0.0 {
        cfg.scale
    } else {
        auto_scale(&mut scratch, ctx, labels, train_ids, dim, cfg)
    };
    let samples = cfg.samples.max(1);
    let mut avg = vec![0.0; dim];
    for chain in 0..samples as u64 {
        let mut x: Vec<f64> = grad_f.to_vec();
        for j in 0..cfg.depth as u64 {
            // Cooperative deadline: truncating the Neumann series early still
            // yields a finite (coarser) estimate.
            if !ppfr_resilience::checkpoint(1) {
                break;
            }
            let batch = draw_batch(train_ids, cfg.batch, cfg.seed, chain, j);
            let hx = hessian_vector_product_with(
                &mut scratch,
                ctx,
                labels,
                &batch,
                &x,
                cfg.fd_step,
                cfg.damping,
            );
            for ((xi, &gi), &hxi) in x.iter_mut().zip(grad_f.iter()).zip(hx.iter()) {
                *xi = gi + *xi - hxi / scale;
            }
        }
        for (a, &xi) in avg.iter_mut().zip(x.iter()) {
            *a += xi;
        }
    }
    let inv = 1.0 / (samples as f64 * scale);
    for a in avg.iter_mut() {
        *a *= inv;
    }
    influence_from_s_f(model, ctx, labels, train_ids, &avg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_batch_is_deterministic_sorted_and_sized() {
        let ids: Vec<usize> = (0..20).map(|i| i * 3).collect();
        let a = draw_batch(&ids, 5, 7, 0, 3);
        let b = draw_batch(&ids, 5, 7, 0, 3);
        assert_eq!(a, b, "same (seed, chain, iter) must draw the same batch");
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "batch must be sorted");
        assert!(a.iter().all(|v| ids.contains(v)));
        let c = draw_batch(&ids, 5, 7, 0, 4);
        assert_ne!(a, c, "different iterations should draw different batches");
        assert_eq!(draw_batch(&ids, 0, 7, 0, 0), ids, "batch=0 is full-batch");
        assert_eq!(
            draw_batch(&ids, 99, 7, 0, 0),
            ids,
            "oversized batch is full"
        );
    }
}
