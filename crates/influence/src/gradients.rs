//! Parameter-space gradients of the interested functions (utility, bias, risk).

use crate::risk_grad::sq_risk_gradient_wrt_probs;
use ppfr_fairness::bias_gradient_wrt_probs;
use ppfr_gnn::{GnnModel, GraphContext, TrainWorkspace};
use ppfr_graph::SparseMatrix;
use ppfr_linalg::{row_softmax, row_softmax_backward};
use ppfr_nn::{weighted_cross_entropy, weighted_cross_entropy_into};
use ppfr_privacy::PairSample;

/// Gradient of the *total* (unit-weight) training loss w.r.t. the parameters,
/// i.e. `∇_θ Σ_{v ∈ V_l} L(ŷ_v, y_v; θ)` — the utility function of Eq. (11).
pub fn training_loss_grad(
    model: &dyn GnnModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
) -> Vec<f64> {
    let logits = model.forward(ctx);
    let weights = vec![1.0; train_ids.len()];
    let ce = weighted_cross_entropy(&logits, labels, train_ids, &weights);
    // weighted_cross_entropy divides by |V_l|; rescale to the paper's sum form.
    let d_logits = ce.d_logits.scale(train_ids.len() as f64);
    model.backward(ctx, &d_logits)
}

/// [`training_loss_grad`] through a reusable [`TrainWorkspace`]: the gradient
/// lands in `ws.grads` and no intermediate is allocated once the workspace is
/// warm.  Bit-identical to the allocating entry point (pinned by the tests in
/// this crate), which is what lets the conjugate-gradient solver call it once
/// per Hessian-vector product without churning the allocator.
pub fn training_loss_grad_ws(
    model: &dyn GnnModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    ws: &mut TrainWorkspace,
) {
    model.forward_ws(ctx, ws);
    ws.ensure_unit_weights(train_ids.len());
    weighted_cross_entropy_into(
        &ws.logits,
        labels,
        train_ids,
        &ws.unit_weights,
        &mut ws.probs,
        &mut ws.d_logits,
    );
    // Rescale to the paper's sum form, mirroring `training_loss_grad`.
    let n = train_ids.len() as f64;
    ws.d_logits.map_inplace(|v| v * n);
    model.backward_ws(ctx, ws);
}

/// Gradient of the single-node loss `L(ŷ_v, y_v; θ)` w.r.t. the parameters.
pub fn node_loss_grad(
    model: &dyn GnnModel,
    ctx: &GraphContext,
    labels: &[usize],
    node: usize,
) -> Vec<f64> {
    let logits = model.forward(ctx);
    let ce = weighted_cross_entropy(&logits, labels, &[node], &[1.0]);
    model.backward(ctx, &ce.d_logits)
}

/// Gradient of the InFoRM bias `f_bias(θ) = Tr(Pᵀ L_S P)/n` w.r.t. the
/// parameters, back-propagated through the softmax.
pub fn bias_grad_wrt_params(
    model: &dyn GnnModel,
    ctx: &GraphContext,
    l_s: &SparseMatrix,
) -> Vec<f64> {
    let logits = model.forward(ctx);
    let probs = row_softmax(&logits);
    let d_probs = bias_gradient_wrt_probs(&probs, l_s);
    let d_logits = row_softmax_backward(&probs, &d_probs);
    model.backward(ctx, &d_logits)
}

/// Gradient of the normalised privacy-risk function
/// `f_risk(θ) = 2‖d̄₀ − d̄₁‖/(var(d₀)+var(d₁))` w.r.t. the parameters.
pub fn risk_grad_wrt_params(
    model: &dyn GnnModel,
    ctx: &GraphContext,
    sample: &PairSample,
) -> Vec<f64> {
    let logits = model.forward(ctx);
    let probs = row_softmax(&logits);
    let d_probs = sq_risk_gradient_wrt_probs(&probs, sample);
    let d_logits = row_softmax_backward(&probs, &d_probs);
    model.backward(ctx, &d_logits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_datasets::{generate, two_block_synthetic};
    use ppfr_gnn::{AnyModel, ModelKind};
    use ppfr_graph::{jaccard_similarity, similarity_laplacian};
    use ppfr_nn::central_difference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        AnyModel,
        GraphContext,
        Vec<usize>,
        Vec<usize>,
        SparseMatrix,
        PairSample,
    ) {
        let ds = generate(&two_block_synthetic(), 3);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 6, ds.n_classes, 5);
        let s = jaccard_similarity(&ds.graph);
        let l = similarity_laplacian(&s);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = PairSample::balanced(&ds.graph, &mut rng);
        (
            model,
            ctx,
            ds.labels.clone(),
            ds.splits.train.clone(),
            l,
            sample,
        )
    }

    #[test]
    fn training_loss_grad_matches_sum_of_node_grads() {
        let (model, ctx, labels, train_ids, _, _) = setup();
        let total = training_loss_grad(&model, &ctx, &labels, &train_ids);
        let mut summed = vec![0.0; model.n_params()];
        for &v in &train_ids {
            let g = node_loss_grad(&model, &ctx, &labels, v);
            for (s, gi) in summed.iter_mut().zip(g) {
                *s += gi;
            }
        }
        for (a, b) in total.iter().zip(summed.iter()) {
            assert!((a - b).abs() < 1e-9, "sum decomposition failed: {a} vs {b}");
        }
    }

    #[test]
    fn bias_grad_matches_finite_difference() {
        let (model, ctx, _, _, l, _) = setup();
        let analytic = bias_grad_wrt_params(&model, &ctx, &l);
        let f = |p: &[f64]| {
            let mut m = model.clone();
            m.set_params(p);
            let probs = row_softmax(&m.forward(&ctx));
            ppfr_fairness::bias(&probs, &l)
        };
        // Spot-check a subset of coordinates to keep the test fast.
        let params = model.params();
        let numeric = central_difference(f, &params, 1e-5);
        let mut checked = 0;
        for i in (0..params.len()).step_by(params.len() / 25 + 1) {
            assert!(
                (numeric[i] - analytic[i]).abs() < 1e-5 * numeric[i].abs().max(1.0),
                "param {i}: numeric {} vs analytic {}",
                numeric[i],
                analytic[i]
            );
            checked += 1;
        }
        assert!(checked >= 10);
    }

    #[test]
    fn risk_grad_is_finite_and_nonzero_after_training_signal() {
        let (model, ctx, _, _, _, sample) = setup();
        let grad = risk_grad_wrt_params(&model, &ctx, &sample);
        assert_eq!(grad.len(), model.n_params());
        assert!(grad.iter().all(|g| g.is_finite()));
        assert!(
            grad.iter().any(|&g| g.abs() > 0.0),
            "risk gradient should not be identically zero"
        );
    }
}
