//! RQ1 demo: improving individual fairness raises edge-privacy risk.
//!
//! Runs the multi-seed scenario runner over each high-homophily dataset,
//! training a GCN with and without the InFoRM fairness regulariser, and
//! prints the bias / attack-AUC movement as `mean ± std` over the seed axis
//! — the experiment behind Table III and Fig. 4 of the paper.
//!
//! Run with: `cargo run --release -p ppfr --example fairness_privacy_tradeoff`

use ppfr::core::experiments::high_homophily_specs;
use ppfr::core::{ExperimentScale, Method, PpfrConfig};
use ppfr::runner::{run_scenario, ArtifactCache, ScenarioSpec};

fn main() {
    let spec = ScenarioSpec::new(
        "rq1-tradeoff",
        high_homophily_specs(ExperimentScale::Full),
        PpfrConfig::default(),
    )
    .with_methods(&[Method::Vanilla, Method::Reg]);
    println!("RQ1: does improving individual fairness increase edge-privacy risk?");
    println!(
        "(multi-seed: every number is mean±std over seeds {:?})\n",
        spec.seeds
    );

    let report = match run_scenario(&spec, &ArtifactCache::new()) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("scenario failed: {err}");
            std::process::exit(1);
        }
    };
    println!(
        "{:<10} {:>16} {:>16} {:>16} {:>16} {:>10}",
        "dataset", "bias(van)", "bias(Reg)", "AUC(van)", "AUC(Reg)", "mean risk Δ"
    );
    for dataset in report.datasets() {
        let get = |method: &str, metric: &str| {
            report
                .summary(&dataset, "GCN", method, metric)
                .expect("metric present")
                .stats
                .clone()
        };
        let auc_van = get("Vanilla", "risk_auc");
        let auc_reg = get("Reg", "risk_auc");
        println!(
            "{:<10} {:>16} {:>16} {:>16} {:>16} {:>+10.4}",
            dataset,
            get("Vanilla", "bias").pm(4),
            get("Reg", "bias").pm(4),
            auc_van.pm(4),
            auc_reg.pm(4),
            auc_reg.mean - auc_van.mean,
        );
    }
    println!("\nbias(Reg) < bias(van) shows the regulariser works;");
    println!("AUC(Reg) ≥ AUC(van) is the fairness→privacy trade-off of Proposition V.2.");
}
