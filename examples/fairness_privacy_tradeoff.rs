//! RQ1 demo: improving individual fairness raises edge-privacy risk.
//!
//! Trains a GCN with and without the InFoRM fairness regulariser on each
//! high-homophily dataset and prints the bias / attack-AUC movement — the
//! experiment behind Table III and Fig. 4 of the paper.
//!
//! Run with: `cargo run --release -p ppfr-core --example fairness_privacy_tradeoff`

use ppfr_core::experiments::high_homophily_specs;
use ppfr_core::{evaluate, run_method, ExperimentScale, Method, PpfrConfig};
use ppfr_datasets::generate;
use ppfr_gnn::ModelKind;

fn main() {
    let cfg = PpfrConfig::default();
    println!("RQ1: does improving individual fairness increase edge-privacy risk?\n");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "dataset", "bias(van)", "bias(Reg)", "AUC(van)", "AUC(Reg)", "risk Δ"
    );
    for spec in high_homophily_specs(ExperimentScale::Full) {
        let dataset = generate(&spec, 7);
        let vanilla = run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
        let reg = run_method(&dataset, ModelKind::Gcn, Method::Reg, &cfg);
        let e_vanilla = evaluate(&vanilla, &dataset, &cfg);
        let e_reg = evaluate(&reg, &dataset, &cfg);
        println!(
            "{:<10} {:>10.4} {:>10.4} {:>12.4} {:>12.4} {:>+10.4}",
            spec.name,
            e_vanilla.bias,
            e_reg.bias,
            e_vanilla.risk_auc,
            e_reg.risk_auc,
            e_reg.risk_auc - e_vanilla.risk_auc,
        );
    }
    println!("\nbias(Reg) < bias(van) shows the regulariser works;");
    println!("AUC(Reg) ≥ AUC(van) is the fairness→privacy trade-off of Proposition V.2.");
}
