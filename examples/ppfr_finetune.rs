//! Full PPFR pipeline walk-through on one dataset: vanilla training,
//! influence-based fairness re-weighting, privacy-aware perturbation,
//! fine-tuning — compared against the Reg / DPReg / DPFR baselines.
//!
//! Run with: `cargo run --release -p ppfr-core --example ppfr_finetune [dataset]`
//! where `[dataset]` is one of cora (default), citeseer, pubmed, enzymes, credit.

use ppfr_core::{deltas, evaluate, run_method, Method, PpfrConfig};
use ppfr_datasets::{citeseer, cora, credit, enzymes, generate, pubmed};
use ppfr_gnn::ModelKind;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cora".to_string());
    let spec = match which.as_str() {
        "cora" => cora(),
        "citeseer" => citeseer(),
        "pubmed" => pubmed(),
        "enzymes" => enzymes(),
        "credit" => credit(),
        other => {
            eprintln!("unknown dataset '{other}', expected cora|citeseer|pubmed|enzymes|credit");
            std::process::exit(1);
        }
    };
    let dataset = generate(&spec, 7);
    let cfg = PpfrConfig::default();
    println!(
        "PPFR vs baselines on {} ({} nodes, {} edges), GCN, {} vanilla epochs + {} fine-tuning epochs\n",
        spec.name,
        dataset.n_nodes(),
        dataset.graph.n_edges(),
        cfg.vanilla_epochs,
        cfg.finetune_epochs()
    );

    let vanilla = run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
    let reference = evaluate(&vanilla, &dataset, &cfg);
    println!(
        "{:<8}  acc {:.2}%  bias {:.4}  risk-AUC {:.4}   (reference)",
        "Vanilla",
        reference.accuracy * 100.0,
        reference.bias,
        reference.risk_auc
    );

    println!(
        "\n{:<8} {:>8} {:>9} {:>9} {:>9} {:>8}",
        "method", "Δacc%", "Δbias%", "Δrisk%", "Δ", "acc%"
    );
    for method in Method::COMPARED {
        let outcome = run_method(&dataset, ModelKind::Gcn, method, &cfg);
        let eval = evaluate(&outcome, &dataset, &cfg);
        let d = deltas(&reference, &eval);
        println!(
            "{:<8} {:>8.2} {:>9.2} {:>9.2} {:>+9.3} {:>8.2}",
            method.name(),
            d.d_acc * 100.0,
            d.d_bias * 100.0,
            d.d_risk * 100.0,
            d.delta,
            eval.accuracy * 100.0
        );
    }
    println!("\nΔ > 0 means bias and risk improved together; |Δacc| is the performance price.");
}
