//! Quickstart: train a GCN on the synthetic Cora analogue, then measure its
//! accuracy, individual fairness (InFoRM bias) and edge-privacy risk
//! (link-stealing AUC).
//!
//! Run with: `cargo run --release -p ppfr-core --example quickstart`

use ppfr_core::{evaluate, run_method, Method, PpfrConfig};
use ppfr_datasets::{cora, generate};
use ppfr_gnn::ModelKind;
use ppfr_graph::{average_degree, homophily};

fn main() {
    // 1. Generate the seeded synthetic Cora analogue (see DESIGN.md §2).
    let dataset = generate(&cora(), 7);
    println!(
        "dataset: {} — {} nodes, {} edges, homophily {:.2}, avg degree {:.2}",
        dataset.name,
        dataset.n_nodes(),
        dataset.graph.n_edges(),
        homophily(&dataset.graph, &dataset.labels),
        average_degree(&dataset.graph),
    );

    // 2. Vanilla-train a GCN (the `w/o` reference of the paper).
    let cfg = PpfrConfig::default();
    let vanilla = run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
    let eval = evaluate(&vanilla, &dataset, &cfg);

    // 3. Report the three trustworthiness axes.
    println!("\nvanilla GCN:");
    println!("  test accuracy      : {:.2}%", eval.accuracy * 100.0);
    println!("  InFoRM bias        : {:.4}", eval.bias);
    println!(
        "  link-stealing AUC  : {:.4} (mean over 8 distances)",
        eval.risk_auc
    );
    println!("  distance gap f_risk: {:.4}", eval.risk_gap);
    println!("\nper-distance attack AUC:");
    for (name, auc) in &eval.auc_per_distance {
        println!("  {name:<12} {auc:.4}");
    }

    // 4. And the paper's method, for comparison.
    let ppfr = run_method(&dataset, ModelKind::Gcn, Method::Ppfr, &cfg);
    let ours = evaluate(&ppfr, &dataset, &cfg);
    let d = ppfr_core::deltas(&eval, &ours);
    println!("\nPPFR fine-tuned GCN:");
    println!(
        "  test accuracy      : {:.2}%  (Δacc {:+.2}%)",
        ours.accuracy * 100.0,
        d.d_acc * 100.0
    );
    println!(
        "  InFoRM bias        : {:.4}  (Δbias {:+.2}%)",
        ours.bias,
        d.d_bias * 100.0
    );
    println!(
        "  link-stealing AUC  : {:.4}  (Δrisk {:+.2}%)",
        ours.risk_auc,
        d.d_risk * 100.0
    );
    println!("  combined Δ (Eq.22) : {:+.3}", d.delta);
}
