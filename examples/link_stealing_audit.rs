//! Privacy audit: run the black-box link-stealing attack against a trained
//! GNN, with and without edge differential-privacy defences.
//!
//! Shows the full attack surface the paper reasons about: the eight distance
//! metrics, the AUC and the unsupervised clustering variant, and how
//! EdgeRand / LapGraph trade accuracy for privacy.
//!
//! Run with: `cargo run --release -p ppfr-core --example link_stealing_audit`

use ppfr_core::{attack_evaluator, predictions, run_method, Method, PpfrConfig};
use ppfr_datasets::{citeseer, generate, Dataset};
use ppfr_gnn::{train, AnyModel, FairnessReg, GnnModel, GraphContext, ModelKind, TrainConfig};
use ppfr_graph::{jaccard_similarity, similarity_laplacian};
use ppfr_linalg::row_softmax;
use ppfr_nn::accuracy;
use ppfr_privacy::{cluster_attack, edge_rand, lap_graph, AttackEvaluator, DistanceKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn audit(
    label: &str,
    probs: &ppfr_linalg::Matrix,
    dataset: &Dataset,
    evaluator: &mut AttackEvaluator,
) {
    println!("\n== {label} ==");
    println!(
        "  test accuracy: {:.2}%",
        accuracy(probs, &dataset.labels, &dataset.splits.test) * 100.0
    );
    // Every victim is attacked on the same cached pair sample; only the
    // posteriors change between audits.
    let report = evaluator.evaluate(probs);
    for (kind, auc) in report.auc_per_distance {
        println!("  attack AUC [{:<12}] = {:.4}", kind.name(), auc);
    }
    let cluster = cluster_attack(probs, evaluator.sample(), DistanceKind::Euclidean);
    println!(
        "  2-means clustering attack: accuracy {:.3}, precision {:.3}, recall {:.3}, F1 {:.3}",
        cluster.accuracy, cluster.precision, cluster.recall, cluster.f1
    );
}

fn main() {
    let cfg = PpfrConfig::default();
    let dataset = generate(&citeseer(), 7);
    println!(
        "auditing a GCN on {}: {} nodes, {} confidential edges",
        dataset.name,
        dataset.n_nodes(),
        dataset.graph.n_edges()
    );

    let mut evaluator = attack_evaluator(&dataset, &cfg);

    // Victim 1: vanilla GCN on the original graph.
    let vanilla = run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
    audit(
        "vanilla GCN (no defence)",
        &predictions(&vanilla, &cfg),
        &dataset,
        &mut evaluator,
    );

    // Victim 2: fairness-regularised GCN — the attack gets stronger.
    let reg = run_method(&dataset, ModelKind::Gcn, Method::Reg, &cfg);
    audit(
        "fairness-regularised GCN (Reg)",
        &predictions(&reg, &cfg),
        &dataset,
        &mut evaluator,
    );

    // Defences: retrain on an edge-DP graph and audit again.
    let s = jaccard_similarity(&dataset.graph);
    let l_s = similarity_laplacian(&s);
    let fairness = FairnessReg {
        laplacian: l_s,
        lambda: cfg.fairness_lambda,
    };
    for (name, eps) in [("EdgeRand ε=4", 4.0), ("LapGraph ε=4", 4.0)] {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let noisy_graph = if name.starts_with("EdgeRand") {
            edge_rand(&dataset.graph, eps, &mut rng)
        } else {
            lap_graph(&dataset.graph, eps, &mut rng)
        };
        let ctx = GraphContext::new(noisy_graph, dataset.features.clone());
        let mut model = AnyModel::new(
            ModelKind::Gcn,
            ctx.feat_dim(),
            cfg.hidden,
            dataset.n_classes,
            cfg.seed,
        );
        let weights = vec![1.0; dataset.splits.train.len()];
        let train_cfg = TrainConfig {
            epochs: cfg.vanilla_epochs,
            lr: cfg.lr,
            weight_decay: cfg.weight_decay,
            seed: cfg.seed,
        };
        train(
            &mut model,
            &ctx,
            &dataset.labels,
            &dataset.splits.train,
            &weights,
            Some(&fairness),
            &train_cfg,
        );
        let probs = row_softmax(&model.forward(&ctx));
        audit(
            &format!("GCN + fairness Reg + {name}"),
            &probs,
            &dataset,
            &mut evaluator,
        );
    }
}
