//! Privacy audit: run the black-box link-stealing attacks against a trained
//! GNN, with and without edge differential-privacy defences.
//!
//! Shows the full attack surface the paper reasons about — the eight distance
//! metrics, the AUC and the unsupervised clustering variant — plus the
//! supervised threat-model grid of `ppfr_attacks`: shadow-dataset and
//! partial-knowledge adversaries with and without node features, reported
//! next to the unsupervised baseline as a worst-case risk AUC.
//!
//! Run with: `cargo run --release -p ppfr --example link_stealing_audit`

use ppfr_core::{predictions, run_method, threat_auditor, Method, PpfrConfig, ThreatAuditor};
use ppfr_datasets::{citeseer, generate, Dataset};
use ppfr_gnn::{train, AnyModel, FairnessReg, GnnModel, GraphContext, ModelKind, TrainConfig};
use ppfr_graph::{jaccard_similarity, similarity_laplacian};
use ppfr_linalg::row_softmax;
use ppfr_nn::accuracy;
use ppfr_privacy::{cluster_attack, edge_rand, lap_graph, DistanceKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn audit(label: &str, probs: &ppfr_linalg::Matrix, dataset: &Dataset, auditor: &mut ThreatAuditor) {
    println!("\n== {label} ==");
    println!(
        "  test accuracy: {:.2}%",
        accuracy(probs, &dataset.labels, &dataset.splits.test) * 100.0
    );
    // Every victim is attacked on the same cached pair sample (and the same
    // shadow dataset); only the posteriors change between audits.
    let grid = auditor.audit(probs);
    for &(kind, auc) in &grid.unsupervised.auc_per_distance {
        println!("  attack AUC [{:<12}] = {:.4}", kind.name(), auc);
    }
    println!("  -- supervised threat models --");
    for o in &grid.outcomes {
        println!(
            "  attack AUC [{:<26}] = {:.4}  (scorer {}, {} train pairs)",
            o.name, o.auc, o.scorer, o.n_train
        );
    }
    println!(
        "  mean-distance AUC {:.4}  |  worst-case AUC {:.4}",
        grid.unsupervised.average_auc, grid.worst_case_auc
    );
    let cluster = cluster_attack(probs, auditor.sample(), DistanceKind::Euclidean);
    println!(
        "  2-means clustering attack: accuracy {:.3}, precision {:.3}, recall {:.3}, F1 {:.3}",
        cluster.accuracy, cluster.precision, cluster.recall, cluster.f1
    );
}

fn main() {
    let cfg = PpfrConfig::default();
    let dataset = generate(&citeseer(), 7);
    println!(
        "auditing a GCN on {}: {} nodes, {} confidential edges",
        dataset.name,
        dataset.n_nodes(),
        dataset.graph.n_edges()
    );

    let mut auditor = threat_auditor(&dataset, &cfg);

    // Victim 1: vanilla GCN on the original graph.
    let vanilla = run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
    audit(
        "vanilla GCN (no defence)",
        &predictions(&vanilla, &cfg),
        &dataset,
        &mut auditor,
    );

    // Victim 2: fairness-regularised GCN — the attack gets stronger.
    let reg = run_method(&dataset, ModelKind::Gcn, Method::Reg, &cfg);
    audit(
        "fairness-regularised GCN (Reg)",
        &predictions(&reg, &cfg),
        &dataset,
        &mut auditor,
    );

    // Defences: retrain on an edge-DP graph and audit again.
    let s = jaccard_similarity(&dataset.graph);
    let l_s = similarity_laplacian(&s);
    let fairness = FairnessReg {
        laplacian: l_s,
        lambda: cfg.fairness_lambda,
    };
    for (name, eps) in [("EdgeRand ε=4", 4.0), ("LapGraph ε=4", 4.0)] {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let noisy_graph = if name.starts_with("EdgeRand") {
            edge_rand(&dataset.graph, eps, &mut rng)
        } else {
            lap_graph(&dataset.graph, eps, &mut rng)
        };
        let ctx = GraphContext::new(noisy_graph, dataset.features.clone());
        let mut model = AnyModel::new(
            ModelKind::Gcn,
            ctx.feat_dim(),
            cfg.hidden,
            dataset.n_classes,
            cfg.seed,
        );
        let weights = vec![1.0; dataset.splits.train.len()];
        let train_cfg = TrainConfig {
            epochs: cfg.vanilla_epochs,
            lr: cfg.lr,
            weight_decay: cfg.weight_decay,
            seed: cfg.seed,
        };
        train(
            &mut model,
            &ctx,
            &dataset.labels,
            &dataset.splits.train,
            &weights,
            Some(&fairness),
            &train_cfg,
        );
        let probs = row_softmax(&model.forward(&ctx));
        audit(
            &format!("GCN + fairness Reg + {name}"),
            &probs,
            &dataset,
            &mut auditor,
        );
    }
}
