//! The persistent work-stealing thread pool behind every parallel operation.
//!
//! One worker set lives for the whole process, created lazily on the first
//! parallel dispatch and parked on a condvar between jobs — no per-call
//! `std::thread::scope` spawn/join.  A dispatch splits its index space into
//! per-participant chunk deques; each participant pops its own deque from the
//! back (LIFO, cache-warm) and, when empty, steals from another participant's
//! front (FIFO, the coldest chunk).  Workers steal *work*, never results:
//! every task writes to a slot keyed by its index, so the output is
//! independent of which thread ran what and results are bit-identical across
//! thread counts.
//!
//! The deque/steal/accounting protocol itself lives in [`crate::steal`] as
//! [`StealCore`], generic over a synchronization facade — this module only
//! adds the process-wide worker set, the announcement queue, and the
//! raw-pointer scope discipline.  The split exists so the protocol can be
//! instantiated under the `loom_lite` model checker and its 2–3-thread
//! schedules explored exhaustively (see `crates/analysis`).
//!
//! # Scoped safety
//!
//! Jobs live on the dispatcher's stack and are published to workers as raw
//! pointers.  Three invariants make that sound:
//!
//! 1. a worker may only learn about a job through the announcement queue, and
//!    it registers itself in the job's attach counter *under the queue lock*;
//! 2. the dispatcher removes the announcement (again under the queue lock)
//!    before it stops blocking, so no new worker can attach afterwards;
//! 3. the dispatcher then waits until every pending item is accounted for
//!    *and* the attach counter has drained back to zero before returning.
//!
//! # Panics
//!
//! A panicking task aborts the job: the first payload is captured, remaining
//! chunks are drained without running, and the dispatcher re-raises the
//! payload on its own thread once every participant has detached.

use crate::stats;
use crate::steal::{StdSync, StealCore};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard ceiling on spawned workers, guarding against absurd
/// `PPFR_NUM_THREADS` values.  The dispatcher itself always participates, so
/// jobs complete even when fewer workers exist than seats were offered.
const MAX_WORKERS: usize = 128;

/// Chunks each participant's contiguous index range is split into.  More
/// chunks mean finer-grained stealing; fewer mean less deque traffic.  Chunk
/// boundaries never influence results (tasks are keyed by index), only who
/// runs what.
const CHUNKS_PER_PARTICIPANT: usize = 4;

/// A job published to the pool: an erased pointer plus the monomorphic entry
/// points workers use to participate in it.
struct Announcement {
    /// Erased `&IndexJob<'_>` / `&JoinJob<'_, …>` living on the dispatcher's
    /// stack; valid until the dispatcher retracts the announcement and the
    /// attach counter drains (see module docs).
    job: *const (),
    /// Bumps the job's attach counter; called under the queue lock.
    // SAFETY: callers must pass the announcement's own `job` pointer while
    // the announcement is still queued (the dispatcher keeps the job alive
    // until retraction plus attach-drain).
    attach: unsafe fn(*const ()),
    /// Runs one participant to completion and detaches.
    // SAFETY: same contract as `attach`; additionally the seat index must
    // have been claimed from `seats` exactly once.
    enter: unsafe fn(*const (), usize),
    /// Participant seats not yet claimed by a worker.
    seats: Range<usize>,
    /// Identity for retraction.
    id: u64,
}

// SAFETY: the raw job pointer is only dereferenced while the dispatcher
// provably blocks (invariants in the module docs).
unsafe impl Send for Announcement {}

struct PoolState {
    queue: VecDeque<Announcement>,
    /// Workers spawned so far (monotonic, ≤ [`MAX_WORKERS`]).
    workers: usize,
    next_id: u64,
}

/// The process-wide pool: an announcement queue plus the condvar idle
/// workers park on.
pub(crate) struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

/// The lazily-created process-wide pool instance.
pub(crate) fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
            next_id: 0,
        }),
        work_cv: Condvar::new(),
    })
}

impl Pool {
    /// Ensures at least `needed` workers exist (capped at [`MAX_WORKERS`]).
    /// Spawn failures are tolerated: the dispatcher participates in every job
    /// it publishes, so fewer workers only means less parallelism.
    fn ensure_workers(&'static self, needed: usize) {
        let needed = needed.min(MAX_WORKERS);
        let mut state = self.state.lock().unwrap();
        while state.workers < needed {
            let name = format!("ppfr-pool-{}", state.workers);
            let spawned = std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(self));
            if spawned.is_err() {
                break;
            }
            state.workers += 1;
        }
    }

    /// Publishes a job, offering `seats` to workers, and wakes the pool.
    // SAFETY: of the passed fn pointers — the caller (the dispatcher) must
    // keep `job` valid until it has retracted this announcement and waited
    // for the attach counter to drain; see the module docs.
    fn announce(
        &'static self,
        job: *const (),
        attach: unsafe fn(*const ()),
        enter: unsafe fn(*const (), usize),
        seats: Range<usize>,
    ) -> u64 {
        let mut state = self.state.lock().unwrap();
        let id = state.next_id;
        state.next_id += 1;
        state.queue.push_back(Announcement {
            job,
            attach,
            enter,
            seats,
            id,
        });
        self.work_cv.notify_all();
        id
    }

    /// Removes a job's remaining announcement, if any.  After this returns no
    /// new worker can attach to the job; workers that attached before hold
    /// the attach counter the dispatcher still waits on.
    fn retract(&'static self, id: u64) {
        let mut state = self.state.lock().unwrap();
        state.queue.retain(|a| a.id != id);
    }
}

/// Body of every pool worker: claim a seat on the oldest announced job, run
/// it to completion, park when the queue is empty.
fn worker_loop(pool: &'static Pool) {
    let mut state = pool.state.lock().unwrap();
    loop {
        if let Some(ann) = state.queue.front_mut() {
            match ann.seats.next() {
                Some(seat) => {
                    let job = ann.job;
                    let attach = ann.attach;
                    let enter = ann.enter;
                    if ann.seats.is_empty() {
                        state.queue.pop_front();
                    }
                    // SAFETY: attach runs under the queue lock, before the
                    // dispatcher could have retracted this announcement, so
                    // the dispatcher will wait for the matching detach.
                    unsafe { attach(job) };
                    drop(state);
                    // SAFETY: the job stays alive until we detach (inside
                    // `enter`).
                    unsafe { enter(job, seat) };
                    state = pool.state.lock().unwrap();
                }
                None => {
                    state.queue.pop_front();
                }
            }
        } else {
            stats::note_park();
            state = pool.work_cv.wait(state).unwrap();
        }
    }
}

/// An indexed scoped job: the generic steal protocol plus the erased task it
/// runs.  `task(i)` executes exactly once for every `i in 0..n_items`,
/// cooperatively across the dispatcher and any workers that claim a seat.
struct IndexJob<'a> {
    core: StealCore<StdSync>,
    task: &'a (dyn Fn(usize) + Sync),
}

/// Worker-side entry points for [`IndexJob`], monomorphic so the pool can
/// hold them as plain fn pointers.
///
/// # Safety
/// `job` must point at a live `IndexJob` whose dispatcher is still blocked in
/// its drain loop; the caller (the worker loop) guarantees that by attaching
/// under the queue lock before the dispatcher's retraction (module docs).
unsafe fn index_attach(job: *const ()) {
    let job = &*(job as *const IndexJob<'_>);
    job.core.attach();
}

/// # Safety
/// `job` must point at a live `IndexJob` previously passed to
/// [`index_attach`]; the attach counter keeps the dispatcher blocked until
/// the matching `detach` at the end of this call.
unsafe fn index_enter(job: *const (), seat: usize) {
    let job = &*(job as *const IndexJob<'_>);
    job.core.participate(seat, job.task);
    job.core.detach();
}

/// Runs `task(i)` for every `i in 0..n_items` across up to `threads`
/// participants (the calling thread plus pool workers), work-stealing.
/// Returns once every index has run; re-raises the first task panic.
pub(crate) fn dispatch(n_items: usize, threads: usize, task: &(dyn Fn(usize) + Sync)) {
    if threads <= 1 || n_items <= 1 {
        stats::note_serial_fallback();
        for i in 0..n_items {
            task(i);
        }
        return;
    }
    stats::note_dispatch();
    let participants = threads.min(n_items).min(MAX_WORKERS + 1);
    let job = IndexJob {
        core: StealCore::new(n_items, participants, CHUNKS_PER_PARTICIPANT),
        task,
    };

    let pool = pool();
    pool.ensure_workers(participants - 1);
    let id = pool.announce(
        &job as *const IndexJob<'_> as *const (),
        index_attach,
        index_enter,
        1..participants,
    );
    job.core.participate(0, job.task);
    pool.retract(id);
    job.core.wait_done();
    if let Some(payload) = job.core.take_panic() {
        panic::resume_unwind(payload);
    }
}

/// [`dispatch`] with per-index panic quarantine: every panicking task is
/// caught at the pool task boundary and returned as `(index, payload)`
/// instead of aborting the job, so the remaining indices still run.
///
/// Implemented as a wrapper around [`dispatch`] (serial fallback included):
/// the quarantining closure never lets a panic escape into the steal
/// protocol, so the core's abort-and-reraise path — which non-quarantined
/// callers rely on — is untouched and `StealCore` needs no new states.
/// Payloads are returned sorted by index, independent of which participant
/// ran what.
pub(crate) fn dispatch_quarantined(
    n_items: usize,
    threads: usize,
    task: &(dyn Fn(usize) + Sync),
) -> Vec<(usize, Box<dyn std::any::Any + Send>)> {
    let caught: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());
    dispatch(n_items, threads, &|i| {
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| task(i))) {
            caught
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push((i, payload));
        }
    });
    let mut caught = caught
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    caught.sort_by_key(|(i, _)| *i);
    caught
}

/// A scoped two-closure job backing [`crate::join`]: the second closure is
/// published as a stealable one-seat pool task instead of spawning a thread.
struct JoinJob<B, RB> {
    /// The pending closure; exactly one of the worker or the caller takes it.
    second: Mutex<Option<B>>,
    /// Result slot filled by whichever side ran the closure remotely.
    result: Mutex<Option<std::thread::Result<RB>>>,
    attached: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
}

/// # Safety
/// `job` must point at a live `JoinJob<B, RB>` whose dispatcher is still
/// blocked; guaranteed by attaching under the queue lock (module docs).
unsafe fn join_attach<B, RB>(job: *const ()) {
    let job = &*(job as *const JoinJob<B, RB>);
    job.attached.fetch_add(1, Ordering::AcqRel);
}

/// # Safety
/// `job` must point at a live `JoinJob<B, RB>` previously passed to
/// [`join_attach`]; the attach counter keeps the dispatcher blocked until the
/// detach at the end of this call.
unsafe fn join_enter<B, RB>(job: *const (), _seat: usize)
where
    B: FnOnce() -> RB,
{
    let job = &*(job as *const JoinJob<B, RB>);
    let second = job.second.lock().unwrap().take();
    if let Some(second) = second {
        let result = panic::catch_unwind(AssertUnwindSafe(second));
        *job.result.lock().unwrap() = Some(result);
    }
    if job.attached.fetch_sub(1, Ordering::AcqRel) == 1 {
        let _guard = job.done.lock().unwrap();
        job.done_cv.notify_all();
    }
}

/// Runs `a` on the calling thread while `b` is offered to the pool as a
/// stealable task.  If no worker has claimed `b` by the time `a` finishes,
/// the caller retracts the offer and runs `b` inline — so the call never
/// waits on a busy pool longer than it has to.  Panics from either closure
/// propagate on the calling thread (`a`'s first).
pub(crate) fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job: JoinJob<B, RB> = JoinJob {
        second: Mutex::new(Some(b)),
        result: Mutex::new(None),
        attached: AtomicUsize::new(0),
        done: Mutex::new(()),
        done_cv: Condvar::new(),
    };
    stats::note_join();
    let pool = pool();
    pool.ensure_workers(1);
    let id = pool.announce(
        &job as *const JoinJob<B, RB> as *const (),
        join_attach::<B, RB>,
        join_enter::<B, RB>,
        0..1,
    );
    let result_a = panic::catch_unwind(AssertUnwindSafe(a));
    pool.retract(id);
    // Steal `b` back if no worker claimed it yet.
    let inline_b = job.second.lock().unwrap().take();
    if inline_b.is_some() {
        stats::note_join_inline();
    }
    let inline_result = inline_b.map(|second| panic::catch_unwind(AssertUnwindSafe(second)));
    // Either way, wait until every attached worker has let go of the job —
    // a worker may have attached and lost the race for `b`, and it still
    // holds a reference to the stack-allocated job until it detaches.
    {
        let mut guard = job.done.lock().unwrap();
        while job.attached.load(Ordering::Acquire) != 0 {
            guard = job.done_cv.wait(guard).unwrap();
        }
    }
    let result_b = match inline_result {
        Some(result) => result,
        None => job
            .result
            .lock()
            .unwrap()
            .take()
            .expect("claimed join closure must leave a result"),
    };
    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) | (_, Err(payload)) => panic::resume_unwind(payload),
    }
}
