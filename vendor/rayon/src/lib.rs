//! Offline stand-in for `rayon`.
//!
//! Implements the slice / iterator combinators the PPFR kernels use
//! (`par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`, `into_par_iter`
//! on ranges and vectors, plus [`join`]) on top of `std::thread::scope`.
//!
//! Unlike real rayon the combinators are **eager**: each adapter materialises
//! its items, and the terminal operation splits them into contiguous blocks —
//! one per worker thread — preserving input order in `map`/`collect`.  That
//! trades laziness and work-stealing for zero dependencies, which is the right
//! trade for the dense row-blocked kernels this workspace runs (every row
//! costs roughly the same, so static partitioning is near-optimal).
//!
//! Thread count: `PPFR_NUM_THREADS` env var when set, else
//! `RAYON_NUM_THREADS`, else [`std::thread::available_parallelism`].

use std::sync::OnceLock;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads used by every parallel operation.
///
/// The env override is re-read on every call (it is a handful of nanoseconds
/// next to any kernel) so tests can exercise the multi-threaded code path on
/// single-core machines by toggling `PPFR_NUM_THREADS`.
pub fn current_num_threads() -> usize {
    for var in ["PPFR_NUM_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return n.max(1);
        }
    }
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        (a(), b())
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon::join worker panicked"))
        })
    }
}

/// Below this many items per worker, thread spawn/join overhead outweighs the
/// split: the worker count is capped so each spawned thread has at least this
/// much work, degenerating to fully serial for tiny inputs.  Real rayon
/// amortises this with a persistent work-stealing pool; this shim spawns
/// scoped threads per call, so the floor matters.
const MIN_ITEMS_PER_THREAD: usize = 8;

/// Core of every terminal operation: applies `f` to each item on a pool of
/// scoped threads (contiguous blocks, order-preserving).
fn run<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().div_ceil(MIN_ITEMS_PER_THREAD));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let block = items.len().div_ceil(threads);
    let mut blocks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(block).collect();
        if chunk.is_empty() {
            break;
        }
        blocks.push(chunk);
    }
    let f = &f;
    let results: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|b| s.spawn(move || b.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

/// An eager parallel iterator over an already-materialised item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Operations on [`ParIter`]; mirrors the subset of rayon's
/// `ParallelIterator` the workspace uses.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Converts into the underlying item list (order-preserving).
    fn into_items(self) -> Vec<Self::Item>;

    /// Pairs every item with its index.
    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter {
            items: self.into_items().into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run(self.into_items(), f);
    }

    /// Maps every item in parallel (eagerly), preserving order.
    fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParIter {
            items: run(self.into_items(), f),
        }
    }

    /// Collects the items into any `FromIterator` container.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_items().into_iter().collect()
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.into_items().into_iter().sum()
    }

    /// Folds items pairwise with `op` starting from `identity`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.into_items().into_iter().fold(identity(), op)
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;

    /// Parallel iterator over contiguous chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;

    /// Parallel iterator over contiguous mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled, (0..1000).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_covers_every_element() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[102], 11);
    }

    #[test]
    fn sum_and_reduce_agree_with_serial() {
        let v: Vec<f64> = (0..500).map(|x| x as f64).collect();
        let s: f64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 500.0 * 499.0 / 2.0);
        let r = (0..100usize).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 4950);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
