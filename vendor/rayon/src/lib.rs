//! Offline stand-in for `rayon`.
//!
//! Implements the slice / iterator combinators the PPFR kernels use
//! (`par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`, `into_par_iter`
//! on ranges and vectors, plus [`join`]) on top of a **persistent
//! work-stealing thread pool** ([`pool`]).
//!
//! One worker set lives for the whole process: it is created lazily on the
//! first parallel dispatch, parks on a condvar when idle, and is woken per
//! job — no per-call thread spawn/join.  Each dispatch splits its index space
//! into per-participant chunk deques (LIFO local pop, FIFO steal), so uneven
//! workloads balance dynamically instead of relying on static partitioning.
//! Crucially, workers steal *work*, never results: every task writes to a
//! slot keyed by its index, which keeps `map`/`collect` order-preserving and
//! all results bit-identical regardless of thread count, stealing order, or
//! chunk boundaries.
//!
//! The combinators are still **eager** (each adapter materialises its items)
//! — that trades rayon's lazy fusion for zero dependencies, which remains the
//! right trade for the dense row-blocked kernels this workspace runs.  The
//! lower-level [`dispatch`] entry point avoids even that materialisation for
//! callers (like `ppfr_linalg::parallel`) that can index their work directly.
//!
//! Thread count: `PPFR_NUM_THREADS` env var when set, else
//! `RAYON_NUM_THREADS`, else [`std::thread::available_parallelism`].  The
//! pool lazily grows to the largest count ever requested (so forcing 8
//! threads on a 1-CPU box exercises real multi-threaded stealing), while
//! each individual dispatch uses the count in effect at its call.

use std::sync::OnceLock;

mod pool;
pub mod stats;
pub mod steal;

pub use stats::{pool_stats, reset_pool_stats, set_pool_stats_enabled, PoolStats};

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads used by every parallel operation.
///
/// The env override is re-read on every call (it is a handful of nanoseconds
/// next to any kernel) so tests can exercise the multi-threaded code path on
/// single-core machines by toggling `PPFR_NUM_THREADS`.
pub fn current_num_threads() -> usize {
    for var in ["PPFR_NUM_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return n.max(1);
        }
    }
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Pool-aware: `b` is published to the persistent pool as a *stealable* task
/// instead of spawning a scoped thread per call.  If no idle worker claims it
/// by the time `a` finishes, the caller retracts the offer and runs `b`
/// inline, so the fallback costs two mutex locks rather than a thread spawn.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        (a(), b())
    } else {
        pool::join(a, b)
    }
}

/// Runs `task(i)` exactly once for every `i in 0..n_items`, cooperatively
/// across the calling thread and up to `threads - 1` pool workers with
/// work-stealing.  `threads <= 1` (or fewer than two items) degenerates to a
/// plain serial loop with no pool interaction at all.
///
/// This is the zero-materialisation entry point the `ppfr_linalg::parallel`
/// helpers build on: tasks index into their own buffers, so no per-call item
/// list is allocated.  Panics in a task abort the job and are re-raised on
/// the calling thread.
pub fn dispatch<F>(n_items: usize, threads: usize, task: F)
where
    F: Fn(usize) + Sync,
{
    pool::dispatch(n_items, threads, &task);
}

/// [`dispatch`] with per-index panic quarantine: a panicking task is caught
/// at the pool task boundary and reported as `(index, payload)` instead of
/// aborting the job, so every other index still runs exactly once.  Returns
/// the caught payloads sorted by index (deterministic across thread counts
/// and stealing orders); an empty vec means every task completed.
///
/// Plain [`dispatch`] keeps its abort-and-reraise semantics — quarantine is
/// strictly opt-in via this entry point.
pub fn dispatch_quarantined<F>(
    n_items: usize,
    threads: usize,
    task: F,
) -> Vec<(usize, Box<dyn std::any::Any + Send>)>
where
    F: Fn(usize) + Sync,
{
    pool::dispatch_quarantined(n_items, threads, &task)
}

/// Below this many items per worker, dispatch overhead outweighs the split:
/// the participant count is capped so each has at least this much work,
/// degenerating to fully serial for tiny inputs.
const MIN_ITEMS_PER_THREAD: usize = 8;

/// A raw pointer that may cross thread boundaries; used to hand each indexed
/// task its disjoint slot in a buffer the dispatcher keeps alive.
struct SyncPtr<T>(*mut T);

impl<T> Clone for SyncPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Copies the whole wrapper into the closure (edition-2021 disjoint
    /// capture would otherwise capture only the raw-pointer field, which is
    /// not `Sync`) and returns the pointer.
    fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: every dispatch writes each index's slot from exactly one task, and
// the owning Vec outlives the dispatch.
unsafe impl<T> Sync for SyncPtr<T> {}
unsafe impl<T> Send for SyncPtr<T> {}

/// Core of every terminal operation: applies `f` to each item on the pool
/// (order-preserving — results land by index, whoever computes them).
fn run<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.div_ceil(MIN_ITEMS_PER_THREAD));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let item_ptr = SyncPtr(items.as_mut_ptr());
    let out_ptr = SyncPtr(out.as_mut_ptr());
    let f = &f;
    pool::dispatch(n, threads, &move |i| {
        // SAFETY: each index is dispatched exactly once, slots are disjoint,
        // and both Vecs outlive the dispatch (they are locals below).
        unsafe {
            let item = (*item_ptr.get().add(i))
                .take()
                .expect("item dispatched twice");
            *out_ptr.get().add(i) = Some(f(item));
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("pool dispatch covered every index"))
        .collect()
}

/// An eager parallel iterator over an already-materialised item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Operations on [`ParIter`]; mirrors the subset of rayon's
/// `ParallelIterator` the workspace uses.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Converts into the underlying item list (order-preserving).
    fn into_items(self) -> Vec<Self::Item>;

    /// Pairs every item with its index.
    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter {
            items: self.into_items().into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run(self.into_items(), f);
    }

    /// Maps every item in parallel (eagerly), preserving order.
    fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParIter {
            items: run(self.into_items(), f),
        }
    }

    /// Collects the items into any `FromIterator` container.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_items().into_iter().collect()
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.into_items().into_iter().sum()
    }

    /// Folds items pairwise with `op` starting from `identity`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.into_items().into_iter().fold(identity(), op)
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;

    /// Parallel iterator over contiguous chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;

    /// Parallel iterator over contiguous mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn forced<T>(n: usize, f: impl FnOnce() -> T) -> T {
        // Tests in this crate run single-threaded relative to each other only
        // within the same process; serialise env mutation.
        use std::sync::Mutex;
        static GUARD: Mutex<()> = Mutex::new(());
        let _lock = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        let prev = std::env::var("PPFR_NUM_THREADS").ok();
        std::env::set_var("PPFR_NUM_THREADS", n.to_string());
        let out = f();
        match prev {
            Some(v) => std::env::set_var("PPFR_NUM_THREADS", v),
            None => std::env::remove_var("PPFR_NUM_THREADS"),
        }
        out
    }

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = forced(4, || v.par_iter().map(|&x| 2 * x).collect());
        assert_eq!(doubled, (0..1000).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_covers_every_element() {
        let mut v = vec![0usize; 103];
        forced(4, || {
            v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
                for x in chunk.iter_mut() {
                    *x = i + 1;
                }
            })
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[102], 11);
    }

    #[test]
    fn sum_and_reduce_agree_with_serial() {
        let v: Vec<f64> = (0..500).map(|x| x as f64).collect();
        let s: f64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 500.0 * 499.0 / 2.0);
        let r = (0..100usize).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 4950);
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 2, 4] {
            let (a, b) = forced(threads, || join(|| 2 + 2, || "ok"));
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn dispatch_covers_every_index_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1, 2, 8] {
            let counters: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
            forced(threads, || {
                dispatch(counters.len(), threads, |i| {
                    counters[i].fetch_add(1, Ordering::Relaxed);
                })
            });
            for (i, c) in counters.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn dispatch_propagates_task_panics() {
        let caught = std::panic::catch_unwind(|| {
            forced(4, || {
                dispatch(100, 4, |i| {
                    if i == 63 {
                        panic!("worker task panicked on purpose");
                    }
                })
            })
        });
        let payload = caught.expect_err("panic must propagate to the dispatcher");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("on purpose"), "unexpected payload: {msg}");
        // The pool must stay serviceable after an aborted job.
        let v: Vec<usize> = forced(4, || (0..64usize).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(v, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn dispatch_quarantined_isolates_panics_and_runs_every_other_index() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1, 2, 8] {
            let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            let caught = forced(threads, || {
                dispatch_quarantined(counters.len(), threads, |i| {
                    if i == 17 || i == 63 {
                        panic!("quarantined {i}");
                    }
                    counters[i].fetch_add(1, Ordering::Relaxed);
                })
            });
            let indices: Vec<usize> = caught.iter().map(|(i, _)| *i).collect();
            assert_eq!(indices, vec![17, 63], "at {threads} threads");
            for (i, c) in counters.iter().enumerate() {
                let expected = usize::from(i != 17 && i != 63);
                assert_eq!(c.load(Ordering::Relaxed), expected, "index {i}");
            }
            let msg = caught[0]
                .1
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains("quarantined 17"), "payload preserved: {msg}");
        }
        // The pool stays serviceable and plain dispatch still aborts.
        let v: Vec<usize> = forced(4, || (0..32usize).into_par_iter().map(|x| x).collect());
        assert_eq!(v.len(), 32);
    }

    #[test]
    fn join_panic_in_second_closure_propagates() {
        let caught = std::panic::catch_unwind(|| {
            forced(4, || {
                join(
                    || std::thread::sleep(std::time::Duration::from_millis(2)),
                    || panic!("second closure panicked"),
                )
            })
        });
        assert!(caught.is_err(), "join must re-raise the closure panic");
        let (a, b) = forced(4, || join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }
}
