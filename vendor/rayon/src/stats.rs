//! Opt-in pool statistics: dispatch, steal and park counters.
//!
//! Off by default — every counting site first branches on a single static
//! `AtomicBool`, so the disabled cost is one relaxed load (and the hot
//! participant loop batches its counts in plain locals and flushes once per
//! participation, so even enabled it adds two atomic adds per *job*, not per
//! chunk).
//!
//! All counters use `Ordering::Relaxed` **deliberately**: they are pure
//! statistics, never read to make control-flow decisions inside the pool and
//! never used to order access to other data.  This does not weaken the
//! memory-ordering audit in [`crate::steal`] — that audit covers the steal
//! *protocol* (pending/attached/abort), of which these counters are not a
//! part.  Readers are expected to call [`pool_stats`] at quiescence (after
//! their dispatches returned).
//!
//! The intended consumer is the observability layer (`ppfr_telemetry` /
//! `exp_trace`), which enables the counters when telemetry is on and exports
//! a snapshot per workload; the counters themselves live here so the vendored
//! pool stays dependency-free.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

static DISPATCHES: AtomicU64 = AtomicU64::new(0);
static SERIAL_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static JOINS: AtomicU64 = AtomicU64::new(0);
static JOINS_INLINE: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static LOCAL_POPS: AtomicU64 = AtomicU64::new(0);
static PARKS: AtomicU64 = AtomicU64::new(0);

/// Turns statistics collection on or off (process-wide).  Counters keep
/// their values across toggles; pair with [`reset_pool_stats`] to measure a
/// single workload.
pub fn set_pool_stats_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

pub(crate) fn stats_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter.
pub fn reset_pool_stats() {
    for c in [
        &DISPATCHES,
        &SERIAL_FALLBACKS,
        &JOINS,
        &JOINS_INLINE,
        &STEALS,
        &LOCAL_POPS,
        &PARKS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

/// A snapshot of the pool counters (see [`pool_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel index-space dispatches that actually engaged the pool.
    pub dispatches: u64,
    /// Dispatches that degenerated to the serial loop (`threads <= 1` or
    /// fewer than two items).
    pub serial_fallbacks: u64,
    /// `join` calls that offered their second closure to the pool.
    pub joins: u64,
    /// Of those, how many ran the second closure inline after no worker
    /// claimed it in time.
    pub joins_inline: u64,
    /// Chunks taken from another participant's deque (FIFO steals).
    pub steals: u64,
    /// Chunks a participant popped from its own deque (LIFO pops).
    pub local_pops: u64,
    /// Times an idle worker parked on the pool condvar (spurious wakeups
    /// re-park and count again; this is a statistic, not a precise event).
    pub parks: u64,
}

/// Reads every counter (relaxed).  Meaningful at quiescence — call after the
/// measured dispatches have returned.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        dispatches: DISPATCHES.load(Ordering::Relaxed),
        serial_fallbacks: SERIAL_FALLBACKS.load(Ordering::Relaxed),
        joins: JOINS.load(Ordering::Relaxed),
        joins_inline: JOINS_INLINE.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        local_pops: LOCAL_POPS.load(Ordering::Relaxed),
        parks: PARKS.load(Ordering::Relaxed),
    }
}

pub(crate) fn note_dispatch() {
    if stats_enabled() {
        DISPATCHES.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn note_serial_fallback() {
    if stats_enabled() {
        SERIAL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn note_join() {
    if stats_enabled() {
        JOINS.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn note_join_inline() {
    if stats_enabled() {
        JOINS_INLINE.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn note_park() {
    if stats_enabled() {
        PARKS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Flushes one participation's batched chunk accounting.
pub(crate) fn add_participation(local_pops: u64, steals: u64) {
    if stats_enabled() && (local_pops > 0 || steals > 0) {
        LOCAL_POPS.fetch_add(local_pops, Ordering::Relaxed);
        STEALS.fetch_add(steals, Ordering::Relaxed);
    }
}
