//! The chunk-deque steal protocol, generic over a synchronization facade.
//!
//! This module is the verification seam of the pool: [`StealCore`] owns the
//! per-participant chunk deques, the pending/attached accounting, the abort
//! flag and the completion latch — everything `pool.rs` relies on for
//! soundness — expressed against the [`SyncFacade`] trait family instead of
//! concrete `std::sync` types.  Production code instantiates it with
//! [`StdSync`] (plain `std` primitives, zero overhead); the `loom` feature
//! adds a second instantiation over `loom_lite`'s virtual primitives so the
//! analysis layer can exhaustively model-check 2–3-thread schedules of the
//! very same protocol code (`crates/analysis/tests/loom_pool.rs`).
//!
//! # Memory-ordering audit
//!
//! No `Ordering::Relaxed` is used anywhere in the protocol; every atomic is
//! a cross-thread handshake and needs the ordering it has:
//!
//! * `pending` — `AcqRel` on `fetch_sub`: the *release* makes each chunk's
//!   task writes visible to whoever observes the counter hit zero, the
//!   *acquire* makes prior decrements (and their writes) visible to the
//!   participant that performs the final decrement and signals completion.
//! * `attached` — `AcqRel` on `fetch_add`/`fetch_sub`: pairs attach (under
//!   the pool's queue lock) with the dispatcher's drain loop, so the
//!   dispatcher cannot observe `attached == 0` while a worker still holds a
//!   reference to the stack-allocated job.
//! * `abort` — `Release` store / `Acquire` load: the panic payload write
//!   must be visible before any participant observes the flag and starts
//!   draining.  A `Relaxed` pair would still abort eventually but could
//!   reorder around the payload mutex on weakly-ordered hardware; the flag
//!   is read once per chunk, so the stronger ordering costs nothing.
//! * The dispatcher's completion re-check loads are `Acquire` so the task
//!   writes of the final chunk are visible once `wait_done` returns.
//!
//! The opt-in statistics counters ([`crate::stats`]) *do* use `Relaxed`, but
//! they are not part of the protocol: nothing reads them to make decisions
//! inside the pool and they never order access to other data.  The audit
//! claim above is about the handshake atomics listed here.

use std::collections::VecDeque;
use std::ops::DerefMut;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;

/// A contiguous range of task indices, the unit of stealing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// First task index of the chunk (inclusive).
    pub start: usize,
    /// One past the last task index (exclusive).
    pub end: usize,
}

/// `AtomicUsize` surface the protocol needs.
pub trait AtomicUsizeApi {
    /// Creates the atomic holding `v`.
    fn new(v: usize) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> usize;
    /// Atomic add; returns the previous value.
    fn fetch_add(&self, v: usize, order: Ordering) -> usize;
    /// Atomic subtract; returns the previous value.
    fn fetch_sub(&self, v: usize, order: Ordering) -> usize;
}

/// `AtomicBool` surface the protocol needs.
pub trait AtomicBoolApi {
    /// Creates the atomic holding `v`.
    fn new(v: bool) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> bool;
    /// Atomic store.
    fn store(&self, v: bool, order: Ordering);
}

/// Mutex surface the protocol needs (poisoning is ignored: the protocol
/// catches task panics itself, so a poisoned lock only ever wraps state that
/// is still consistent).
pub trait MutexApi<T>: Sized {
    /// The RAII guard type.
    type Guard<'a>: DerefMut<Target = T>
    where
        Self: 'a,
        T: 'a;
    /// Creates the mutex holding `v`.
    fn new(v: T) -> Self;
    /// Acquires the lock.
    fn lock(&self) -> Self::Guard<'_>;
}

/// Condvar surface the protocol needs, tied to the facade's mutex family.
pub trait CondvarApi<F: SyncFacade>: Sized {
    /// Creates the condvar.
    fn new() -> Self;
    /// Releases the guard's lock, blocks until notified, reacquires.
    /// Callers must re-check their predicate in a loop (spurious wakeups).
    fn wait<'a, T: Send>(
        &self,
        guard: <F::Mutex<T> as MutexApi<T>>::Guard<'a>,
    ) -> <F::Mutex<T> as MutexApi<T>>::Guard<'a>;
    /// Wakes every waiter.
    fn notify_all(&self);
}

/// The family of synchronization primitives [`StealCore`] is generic over.
pub trait SyncFacade: Sized + 'static {
    /// `AtomicUsize` stand-in.
    type AtomicUsize: AtomicUsizeApi + Send + Sync;
    /// `AtomicBool` stand-in.
    type AtomicBool: AtomicBoolApi + Send + Sync;
    /// `Mutex<T>` stand-in.
    type Mutex<T: Send>: MutexApi<T> + Send + Sync;
    /// `Condvar` stand-in.
    type Condvar: CondvarApi<Self> + Send + Sync;
}

/// The production facade: plain `std::sync` primitives.
pub struct StdSync;

impl AtomicUsizeApi for std::sync::atomic::AtomicUsize {
    fn new(v: usize) -> Self {
        Self::new(v)
    }
    fn load(&self, order: Ordering) -> usize {
        self.load(order)
    }
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        self.fetch_add(v, order)
    }
    fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
        self.fetch_sub(v, order)
    }
}

impl AtomicBoolApi for std::sync::atomic::AtomicBool {
    fn new(v: bool) -> Self {
        Self::new(v)
    }
    fn load(&self, order: Ordering) -> bool {
        self.load(order)
    }
    fn store(&self, v: bool, order: Ordering) {
        self.store(v, order)
    }
}

impl<T> MutexApi<T> for std::sync::Mutex<T> {
    type Guard<'a>
        = std::sync::MutexGuard<'a, T>
    where
        Self: 'a,
        T: 'a;
    fn new(v: T) -> Self {
        Self::new(v)
    }
    fn lock(&self) -> Self::Guard<'_> {
        self.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl CondvarApi<StdSync> for std::sync::Condvar {
    fn new() -> Self {
        Self::new()
    }
    fn wait<'a, T: Send>(
        &self,
        guard: <<StdSync as SyncFacade>::Mutex<T> as MutexApi<T>>::Guard<'a>,
    ) -> <<StdSync as SyncFacade>::Mutex<T> as MutexApi<T>>::Guard<'a> {
        self.wait(guard).unwrap_or_else(|p| p.into_inner())
    }
    fn notify_all(&self) {
        self.notify_all()
    }
}

impl SyncFacade for StdSync {
    type AtomicUsize = std::sync::atomic::AtomicUsize;
    type AtomicBool = std::sync::atomic::AtomicBool;
    type Mutex<T: Send> = std::sync::Mutex<T>;
    type Condvar = std::sync::Condvar;
}

/// First captured panic payload of an aborted job.
pub type PanicPayload = Box<dyn std::any::Any + Send>;

/// The steal-protocol state of one indexed job: per-participant chunk
/// deques plus the accounting that tells the dispatcher when the job is
/// complete and every participant has let go of it.
///
/// Lifecycle (mirrors `pool::dispatch`):
/// 1. the dispatcher builds the core with every chunk pre-pushed;
/// 2. each worker that will participate is [`attach`](Self::attach)ed
///    *before* the dispatcher could observe it absent (in the pool, under
///    the announcement-queue lock);
/// 3. participants run [`participate`](Self::participate) and then
///    [`detach`](Self::detach); the dispatcher participates directly and
///    then blocks in [`wait_done`](Self::wait_done);
/// 4. `wait_done` returns only once every task index is accounted for and
///    the attach counter has drained, after which the dispatcher may
///    inspect [`take_panic`](Self::take_panic) and free the core.
pub struct StealCore<F: SyncFacade> {
    /// One chunk deque per participant seat: owner pops the back (LIFO,
    /// cache-warm), thieves pop the front (FIFO, the coldest chunk).
    deques: Box<[F::Mutex<VecDeque<Chunk>>]>,
    /// Task indices not yet executed or drained.
    pending: F::AtomicUsize,
    /// Participants currently attached (holding a reference to the core).
    attached: F::AtomicUsize,
    /// Set on the first panic; participants then drain instead of running.
    abort: F::AtomicBool,
    /// First captured panic payload, re-raised by the dispatcher.
    panic: F::Mutex<Option<PanicPayload>>,
    /// Completion latch guarding re-checks of the two counters.
    done: F::Mutex<()>,
    done_cv: F::Condvar,
}

impl<F: SyncFacade> StealCore<F> {
    /// Builds a core whose `n_items` indices are split evenly across
    /// `participants` seats, each seat's range further split into up to
    /// `chunks_per_participant` steal units.
    ///
    /// Chunk boundaries never influence results (tasks are keyed by index),
    /// only who runs what.
    pub fn new(n_items: usize, participants: usize, chunks_per_participant: usize) -> Self {
        assert!(participants > 0, "at least one participant seat");
        let per = n_items.div_ceil(participants);
        let chunk_len = per.div_ceil(chunks_per_participant.max(1)).max(1);
        let deques: Vec<VecDeque<Chunk>> = (0..participants)
            .map(|p| {
                let lo = (p * per).min(n_items);
                let hi = ((p + 1) * per).min(n_items);
                let mut deque = VecDeque::with_capacity(chunks_per_participant);
                let mut start = lo;
                while start < hi {
                    let end = (start + chunk_len).min(hi);
                    deque.push_back(Chunk { start, end });
                    start = end;
                }
                deque
            })
            .collect();
        Self::from_chunks(deques)
    }

    /// Builds a core from explicit per-seat deques (model-checking scenarios
    /// use this to stage uneven seats, e.g. pure thieves with empty deques).
    pub fn from_chunks(deques: Vec<VecDeque<Chunk>>) -> Self {
        let n_items: usize = deques
            .iter()
            .flat_map(|d| d.iter())
            .map(|c| c.end - c.start)
            .sum();
        StealCore {
            deques: deques.into_iter().map(F::Mutex::new).collect(),
            pending: F::AtomicUsize::new(n_items),
            attached: F::AtomicUsize::new(0),
            abort: F::AtomicBool::new(false),
            panic: F::Mutex::new(None),
            done: F::Mutex::new(()),
            done_cv: F::Condvar::new(),
        }
    }

    /// Number of participant seats.
    pub fn seats(&self) -> usize {
        self.deques.len()
    }

    /// Registers a participant the dispatcher must wait for.  In the pool
    /// this runs under the announcement-queue lock, before the dispatcher's
    /// retraction — that is what makes the subsequent [`detach`] observable
    /// to [`wait_done`].
    pub fn attach(&self) {
        self.attached.fetch_add(1, Ordering::AcqRel);
    }

    /// Unregisters a participant; the last one out signals the dispatcher.
    pub fn detach(&self) {
        if self.attached.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.signal_done();
        }
    }

    fn signal_done(&self) {
        let _guard = self.done.lock();
        self.done_cv.notify_all();
    }

    /// One participant's work loop: LIFO pop from the own deque, FIFO steal
    /// from the others, account every chunk taken.  Task panics are caught,
    /// the first payload is stored, and remaining chunks are drained without
    /// running (each still accounted, so `pending` always reaches zero).
    pub fn participate(&self, seat: usize, task: &(dyn Fn(usize) + Sync)) {
        let n_deques = self.deques.len();
        // Chunk accounting for `crate::stats`, batched in plain locals and
        // flushed once at loop exit so the hot path stays atomic-free.
        let (mut local_pops, mut steals) = (0u64, 0u64);
        loop {
            // The own-deque guard must drop before stealing: holding it
            // while locking a victim's deque would deadlock with a
            // participant stealing in the opposite direction.  Each lock
            // below is a statement-scoped temporary, so exactly one is held
            // at a time.
            let own = self.deques[seat].lock().pop_back();
            let chunk = match own {
                Some(chunk) => {
                    local_pops += 1;
                    Some(chunk)
                }
                None => (1..n_deques).find_map(|offset| {
                    let victim = (seat + offset) % n_deques;
                    let stolen = self.deques[victim].lock().pop_front();
                    if stolen.is_some() {
                        steals += 1;
                    }
                    stolen
                }),
            };
            let Some(chunk) = chunk else { break };
            if !self.abort.load(Ordering::Acquire) {
                let run = panic::catch_unwind(AssertUnwindSafe(|| {
                    for i in chunk.start..chunk.end {
                        task(i);
                    }
                }));
                if let Err(payload) = run {
                    self.abort.store(true, Ordering::Release);
                    let mut slot = self.panic.lock();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            let len = chunk.end - chunk.start;
            if self.pending.fetch_sub(len, Ordering::AcqRel) == len {
                self.signal_done();
            }
        }
        crate::stats::add_participation(local_pops, steals);
    }

    /// Blocks until every task index is accounted for *and* every attached
    /// participant has detached.  Only after this returns may the core be
    /// dropped — detached participants hold no reference to it.
    pub fn wait_done(&self) {
        let mut guard = self.done.lock();
        while self.pending.load(Ordering::Acquire) != 0
            || self.attached.load(Ordering::Acquire) != 0
        {
            guard = self.done_cv.wait(guard);
        }
        drop(guard);
    }

    /// Takes the first captured task panic, if any ran into one.
    pub fn take_panic(&self) -> Option<PanicPayload> {
        self.panic.lock().take()
    }

    /// Remaining unaccounted task indices (0 once the job is complete).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Currently attached participants (0 once the job is complete).
    pub fn attached_count(&self) -> usize {
        self.attached.load(Ordering::Acquire)
    }
}

#[cfg(feature = "loom")]
mod loom_facade {
    //! [`SyncFacade`] instantiation over `loom_lite`'s virtual primitives,
    //! so `StealCore<LoomSync>` runs under the exhaustive schedule explorer.
    use super::{AtomicBoolApi, AtomicUsizeApi, CondvarApi, MutexApi, SyncFacade};
    use std::sync::atomic::Ordering;

    /// The model-checking facade (`loom` feature only).
    pub struct LoomSync;

    impl AtomicUsizeApi for loom_lite::sync::atomic::AtomicUsize {
        fn new(v: usize) -> Self {
            Self::new(v)
        }
        fn load(&self, _order: Ordering) -> usize {
            self.load()
        }
        fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
            self.fetch_add(v)
        }
        fn fetch_sub(&self, v: usize, _order: Ordering) -> usize {
            self.fetch_sub(v)
        }
    }

    impl AtomicBoolApi for loom_lite::sync::atomic::AtomicBool {
        fn new(v: bool) -> Self {
            Self::new(v)
        }
        fn load(&self, _order: Ordering) -> bool {
            self.load()
        }
        fn store(&self, v: bool, _order: Ordering) {
            self.store(v)
        }
    }

    impl<T> MutexApi<T> for loom_lite::sync::Mutex<T> {
        type Guard<'a>
            = loom_lite::sync::MutexGuard<'a, T>
        where
            Self: 'a,
            T: 'a;
        fn new(v: T) -> Self {
            Self::new(v)
        }
        fn lock(&self) -> Self::Guard<'_> {
            self.lock()
        }
    }

    impl CondvarApi<LoomSync> for loom_lite::sync::Condvar {
        fn new() -> Self {
            Self::new()
        }
        fn wait<'a, T: Send>(
            &self,
            guard: <<LoomSync as SyncFacade>::Mutex<T> as MutexApi<T>>::Guard<'a>,
        ) -> <<LoomSync as SyncFacade>::Mutex<T> as MutexApi<T>>::Guard<'a> {
            self.wait(guard)
        }
        fn notify_all(&self) {
            self.notify_all()
        }
    }

    impl SyncFacade for LoomSync {
        type AtomicUsize = loom_lite::sync::atomic::AtomicUsize;
        type AtomicBool = loom_lite::sync::atomic::AtomicBool;
        type Mutex<T: Send> = loom_lite::sync::Mutex<T>;
        type Condvar = loom_lite::sync::Condvar;
    }
}

#[cfg(feature = "loom")]
pub use loom_facade::LoomSync;
