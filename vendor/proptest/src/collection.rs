//! Collection strategies.

use crate::{SizeRange, Strategy};
use rand::rngs::StdRng;

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
