//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and the `proptest!` macro the PPFR
//! integration tests use.  Unlike upstream there is **no shrinking**: each
//! test runs `cases` deterministic random inputs (seeded from the test name),
//! and a failing case panics with the ordinary assertion message.  That keeps
//! the vendored crate tiny while preserving the property-testing discipline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

pub mod collection;

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-test generator, seeded from the test name so every
/// property explores the same inputs on every run.
#[doc(hidden)]
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, i64, i32, f64, f32);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Element-count specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..self.max)
    }
}

/// Runs one property over `cases` random inputs.  Used by the `proptest!`
/// macro; exposed for completeness.
#[doc(hidden)]
pub fn run_cases(config: &ProptestConfig, test_name: &str, mut case: impl FnMut(&mut StdRng)) {
    let mut rng = test_rng(test_name);
    for _ in 0..config.cases {
        case(&mut rng);
    }
}

/// Declares property tests; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = test_rng("ranges_respect_bounds");
        for _ in 0..200 {
            let x = (3usize..24).generate(&mut rng);
            assert!((3..24).contains(&x));
            let y = (-4.0f64..4.0).generate(&mut rng);
            assert!((-4.0..4.0).contains(&y));
        }
    }

    #[test]
    fn flat_map_sees_outer_value() {
        let mut rng = test_rng("flat_map_sees_outer_value");
        let strat = (2usize..5).prop_flat_map(|n| collection::vec(0usize..n, n));
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..10, y in 0.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert_eq!(x, x);
        }
    }
}
