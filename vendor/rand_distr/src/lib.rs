//! Offline stand-in for the `rand_distr` crate: re-exports the vendored
//! `rand` distribution machinery and adds the Gaussian.

pub use rand::distributions::{Distribution, Uniform};
use rand::RngCore;

/// Error returned by [`Normal::new`] on invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Normal distribution requires finite mean and std >= 0")
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution `N(mean, std²)` sampled via Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Builds the distribution; errors when `std` is negative or either
    /// parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Result<Self, NormalError> {
        if mean.is_finite() && std.is_finite() && std >= 0.0 {
            Ok(Self { mean, std })
        } else {
            Err(NormalError)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 is nudged away from zero so ln(u1) is finite.
        let u1 = (rng.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(2.0, 3.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "variance {var}");
    }

    #[test]
    fn invalid_std_is_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }
}
