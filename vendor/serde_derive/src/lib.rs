//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable offline, so the item is parsed directly from
//! the raw [`proc_macro::TokenStream`].  Supported shapes — exactly what the
//! PPFR workspace derives on:
//!
//! * structs with named fields (no generics),
//! * enums with unit variants only (no generics).
//!
//! Anything else panics at compile time with a clear message, which is the
//! right failure mode for a vendored shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemKind {
    Struct,
    Enum,
}

struct Item {
    kind: ItemKind,
    name: String,
    /// Field names for a struct, variant names for an enum.
    members: Vec<String>,
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn ident_of(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances past `#[...]` attribute pairs and visibility modifiers.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 2; // '#' + bracketed group
        } else if i < tokens.len() && ident_of(&tokens[i]).as_deref() == Some("pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1; // pub(crate) / pub(super)
            }
        } else {
            return i;
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match ident_of(&tokens[i]).as_deref() {
        Some("struct") => ItemKind::Struct,
        Some("enum") => ItemKind::Enum,
        other => panic!("serde_derive shim: expected struct or enum, found {other:?}"),
    };
    i += 1;
    let name = ident_of(&tokens[i]).expect("serde_derive shim: missing item name");
    i += 1;
    let body = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g.stream(),
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic items are not supported (item `{name}`)")
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                panic!("serde_derive shim: unit/tuple structs are not supported (item `{name}`)")
            }
            _ => i += 1,
        }
    };
    let members = match kind {
        ItemKind::Struct => parse_struct_fields(body, &name),
        ItemKind::Enum => parse_enum_variants(body, &name),
    };
    Item {
        kind,
        name,
        members,
    }
}

fn parse_struct_fields(body: TokenStream, item: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = ident_of(&tokens[i])
            .unwrap_or_else(|| panic!("serde_derive shim: expected field name in `{item}`"));
        i += 1;
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "serde_derive shim: expected `:` after field `{field}` in `{item}` (tuple fields unsupported)"
        );
        i += 1;
        // Consume the type up to the next top-level comma; `<...>` nesting is
        // tracked, while parenthesised/bracketed types arrive as single groups.
        let mut angle_depth = 0usize;
        while i < tokens.len() {
            if is_punct(&tokens[i], '<') {
                angle_depth += 1;
            } else if is_punct(&tokens[i], '>') {
                angle_depth = angle_depth.saturating_sub(1);
            } else if angle_depth == 0 && is_punct(&tokens[i], ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn parse_enum_variants(body: TokenStream, item: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let variant = ident_of(&tokens[i])
            .unwrap_or_else(|| panic!("serde_derive shim: expected variant name in `{item}`"));
        i += 1;
        if i < tokens.len() {
            assert!(
                is_punct(&tokens[i], ','),
                "serde_derive shim: only unit enum variants are supported (variant `{variant}` of `{item}`)"
            );
            i += 1;
        }
        variants.push(variant);
    }
    variants
}

/// Derives the vendored `serde::Serialize` (value-tree form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match item.kind {
        ItemKind::Struct => {
            if item.members.is_empty() {
                "serde::Value::Obj(::std::vec::Vec::new())".to_string()
            } else {
                let entries: Vec<String> = item
                    .members
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "serde::Value::Obj(::std::vec::Vec::from([{}]))",
                    entries.join(", ")
                )
            }
        }
        ItemKind::Enum => {
            let arms: Vec<String> = item
                .members
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "serde::Value::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        {body}\n    }}\n}}\n"
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl failed to parse")
}

/// Derives the vendored `serde::Deserialize` (value-tree form).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match item.kind {
        ItemKind::Struct => {
            let fields: Vec<String> = item
                .members
                .iter()
                .map(|f| format!("{f}: serde::Deserialize::from_value(v.require_field(\"{f}\")?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                fields.join(", ")
            )
        }
        ItemKind::Enum => {
            let arms: Vec<String> = item
                .members
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "match serde::Value::as_str(v)? {{ {}, other => ::std::result::Result::Err(serde::Error::msg(::std::format!(\"unknown {name} variant: {{other}}\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n        {body}\n    }}\n}}\n"
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl failed to parse")
}
