//! Sequence helpers (`shuffle`, `choose`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([7u8].choose(&mut rng), Some(&7));
    }
}
