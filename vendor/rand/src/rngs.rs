//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256++ is degenerate on the all-zero state; SplitMix64 never
        // produces it from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
