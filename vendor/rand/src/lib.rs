//! Offline stand-in for the `rand` crate.
//!
//! The PPFR build environment has no access to crates.io, so this vendored
//! crate re-implements the small slice of the `rand` 0.8 API the workspace
//! uses: a deterministic [`rngs::StdRng`] seeded with [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods `gen_range` / `gen_bool` / `sample`, the
//! [`distributions::Distribution`] trait and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast and statistically solid for simulation workloads.  It is **not** a
//! cryptographic generator and its stream differs from upstream `rand`'s
//! `StdRng` (any fixed seed still reproduces exactly across runs and
//! platforms, which is all the experiments rely on).

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, SampleRange};

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..n`, `0..=n`, `-1.0..1.0`, …).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        self.next_f64() < p
    }

    /// Draws one sample from a distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// SplitMix64 step, used for seed expansion.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
            let y: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: usize = rng.gen_range(0..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
