//! Distributions and range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// Ranges that [`crate::Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny residual
                // bias of one 64-bit draw is immaterial for simulations.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                if start == <$ty>::MIN && end == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = (end as i128 - start as i128 + 1) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as i128 + hi as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let u = rng.next_f64() as $ty;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Builds the distribution.
    ///
    /// # Panics
    /// Panics when `low >= high` or either bound is non-finite.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "invalid Uniform bounds"
        );
        Self { low, high }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + rng.next_f64() * (self.high - self.low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Uniform::new(-0.5, 0.5);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((-0.5..0.5).contains(&x));
        }
    }
}
