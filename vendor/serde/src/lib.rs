//! Offline stand-in for `serde`.
//!
//! Real serde is a zero-copy streaming framework; this vendored substitute
//! (de)serialises through an owned JSON-like [`Value`] tree instead, which is
//! ample for the config/result structs the PPFR workspace round-trips.  The
//! `#[derive(Serialize, Deserialize)]` macros come from the sibling
//! `serde_derive` vendor crate and target the [`Serialize`] / [`Deserialize`]
//! traits defined here.
//!
//! Representation rules: every number is an `f64` (integers round-trip
//! exactly up to 2⁵³, far beyond anything the experiments emit); non-finite
//! floats serialise as `null` and deserialise back to `NaN`; maps serialise
//! as arrays of `[key, value]` pairs so non-string keys round-trip.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Owned JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Every JSON number (see module docs for integer fidelity).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

/// (De)serialisation error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Self(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

const NULL: Value = Value::Null;

impl Value {
    /// Object field lookup; returns `Null` for missing fields so optional
    /// fields deserialise to `None` instead of erroring.
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// Object field lookup that errors when the field is absent (or `self` is
    /// not an object).  Derived struct `Deserialize` impls use this so a
    /// typo'd or renamed key in hand-edited JSON surfaces as an error instead
    /// of silently fabricating `NaN`/`0` values.  An explicit `null` is still
    /// accepted and deserialises per the field type (`None` / `NaN`).
    pub fn require_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, found {other:?}"
            ))),
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Num(n) => Ok(*n),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Result<&[Value], Error> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` round-trips through itself, so callers can parse arbitrary JSON
// into a tree, edit it structurally (e.g. merge report sections) and print
// it back without a typed schema.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_num {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(v.as_f64()? as $ty)
            }
        }
    )*};
}

impl_num!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str()?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_arr()?;
                let want = [$($idx,)+].len();
                if items.len() != want {
                    return Err(Error::msg(format!(
                        "expected {want}-tuple, found array of {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()?
            .iter()
            .map(|pair| <(K, V)>::from_value(pair))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()?
            .iter()
            .map(|pair| <(K, V)>::from_value(pair))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup_returns_null_for_missing() {
        let v = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v.field("a"), &Value::Num(1.0));
        assert_eq!(v.field("b"), &Value::Null);
    }

    #[test]
    fn require_field_errors_on_missing_but_accepts_null() {
        let v = Value::Obj(vec![("a".into(), Value::Null)]);
        assert_eq!(v.require_field("a").unwrap(), &Value::Null);
        assert!(v.require_field("b").is_err());
        assert!(Value::Num(1.0).require_field("a").is_err());
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<f64> = Some(3.5);
        let none: Option<f64> = None;
        assert_eq!(
            Option::<f64>::from_value(&some.to_value()).unwrap(),
            Some(3.5)
        );
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), None);
    }

    #[test]
    fn vec_of_tuples_roundtrip() {
        let orig: Vec<(String, f64)> = vec![("a".into(), 1.0), ("b".into(), 2.0)];
        let back = Vec::<(String, f64)>::from_value(&orig.to_value()).unwrap();
        assert_eq!(orig, back);
    }
}
