//! Offline stand-in for `loom`: an exhaustive schedule explorer for small
//! concurrent protocols, std-only, in the same vendoring idiom as the
//! workspace's rand/rayon/serde substitutes.
//!
//! [`model`] runs a scenario closure repeatedly, once per distinct thread
//! interleaving, until the whole schedule space is explored.  Scenario code
//! uses the virtual primitives in [`sync`] and [`thread`] — every operation
//! on them (mutex acquisition, condvar wait/notify, atomic access, join) is
//! a *scheduling point*: the virtual thread parks and a central driver picks
//! which thread runs next.  Virtual threads are real OS threads serialized
//! by a token-passing handshake, so arbitrary Rust code (including
//! `catch_unwind`) runs unmodified between scheduling points.
//!
//! # What is explored
//!
//! Depth-first search over scheduling choices under **sequential
//! consistency**: every operation appears to happen atomically in the
//! schedule order (weak-memory reorderings are out of scope — the protocols
//! verified here use acquire/release or stronger everywhere, see
//! `rayon::steal`).  A mutex critical section is coarsened into a single
//! scheduling point at acquisition: guards in the checked code are
//! statement-scoped and never span another synchronization op, so scheduling
//! inside a critical section cannot be observed.
//!
//! # Soundness of the pruning
//!
//! The explorer prunes with **sleep sets** (Godefroid): after a branch
//! `t` is fully explored from a state, `t` is put to sleep for the sibling
//! branches and woken only by an operation *dependent* with `t`'s pending
//! operation (same object, not both reads).  Sleep-set search visits at
//! least one linearization of every Mazurkiewicz trace, so every reachable
//! terminal state, assertion failure and deadlock is still found; only
//! redundant interleavings of commuting operations are skipped.  The
//! reported [`Report::interleavings`] therefore counts *executions run*,
//! a lower bound on raw interleavings and an upper bound on traces.
//!
//! # Failure reporting
//!
//! A panic on any virtual thread (assertion failures included), a deadlock
//! (no runnable thread while some are unfinished), or an over-long schedule
//! aborts exploration: [`model`] panics with the failing schedule (the
//! sequence of thread ids granted), which replays deterministically.

mod exec;
pub mod sync;
pub mod thread;

use exec::{independent, Op};
use std::sync::Arc;

/// Outcome of a [`model`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Executions run (distinct explored schedules).
    pub interleavings: usize,
    /// True when the schedule space was exhausted; false when the
    /// `max_interleavings` bound of [`model_bounded`] stopped exploration.
    pub complete: bool,
}

/// One decision point along the current DFS path.
struct Node {
    /// Runnable threads at this state with their pending operations.
    enabled: Vec<(usize, Op)>,
    /// Sleeping threads: the initial sleep set inherited from the parent
    /// plus every sibling branch already explored.
    sleep: Vec<usize>,
    /// Branch currently being explored.
    chosen: usize,
    /// True when every enabled thread was already asleep on arrival: the
    /// subtree is provably redundant, the run is completed with an arbitrary
    /// choice and the node is never re-branched.
    redundant: bool,
}

/// Depth-first scheduler state shared across executions.
struct Explorer {
    nodes: Vec<Node>,
}

impl Explorer {
    fn new() -> Self {
        Explorer { nodes: Vec::new() }
    }

    /// Picks the thread to grant at `depth` given the `enabled` set —
    /// replaying the recorded choice below the frontier, extending the path
    /// with a sleep-set-filtered first choice at it.
    fn choose(&mut self, depth: usize, enabled: &[(usize, Op)]) -> usize {
        if let Some(node) = self.nodes.get(depth) {
            debug_assert!(
                enabled.iter().any(|&(t, _)| t == node.chosen),
                "replay diverged: schedule is not deterministic"
            );
            return node.chosen;
        }
        debug_assert_eq!(depth, self.nodes.len(), "skipped a decision point");
        // Initial sleep set: parent's sleepers that are still enabled here
        // and whose pending op commutes with the op the parent just ran.
        let sleep: Vec<usize> = match self.nodes.last() {
            None => Vec::new(),
            Some(parent) => {
                let parent_op = parent
                    .enabled
                    .iter()
                    .find(|&&(t, _)| t == parent.chosen)
                    .map(|&(_, op)| op)
                    .expect("chosen branch must be in the enabled set");
                parent
                    .sleep
                    .iter()
                    .copied()
                    .filter(|&q| {
                        enabled
                            .iter()
                            .any(|&(t, op)| t == q && independent(op, parent_op))
                    })
                    .collect()
            }
        };
        let awake = enabled.iter().map(|&(t, _)| t).find(|t| !sleep.contains(t));
        let (chosen, redundant) = match awake {
            Some(t) => (t, false),
            None => (enabled[0].0, true),
        };
        self.nodes.push(Node {
            enabled: enabled.to_vec(),
            sleep,
            chosen,
            redundant,
        });
        chosen
    }

    /// Backtracks to the deepest node with an unexplored awake branch.
    /// Returns false when the whole space is exhausted.
    fn advance(&mut self) -> bool {
        while let Some(node) = self.nodes.last_mut() {
            if node.redundant {
                self.nodes.pop();
                continue;
            }
            node.sleep.push(node.chosen);
            let next = node
                .enabled
                .iter()
                .map(|&(t, _)| t)
                .find(|t| !node.sleep.contains(t));
            if let Some(t) = next {
                node.chosen = t;
                return true;
            }
            self.nodes.pop();
        }
        false
    }
}

/// Default ceiling on scheduling points per execution; a protocol under
/// check that exceeds it almost certainly livelocks under some schedule.
const MAX_STEPS: usize = 100_000;

/// Exhaustively explores every schedule of `scenario`.  Panics (with the
/// failing schedule) on the first assertion failure, virtual-thread panic,
/// or deadlock.
pub fn model<F>(scenario: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_bounded(scenario, usize::MAX)
}

/// [`model`] stopping after `max_interleavings` executions; the returned
/// [`Report::complete`] records whether the bound was hit.
pub fn model_bounded<F>(scenario: F, max_interleavings: usize) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    let mut explorer = Explorer::new();
    let mut interleavings = 0usize;
    loop {
        let outcome = exec::run_one(Arc::clone(&scenario), &mut explorer, MAX_STEPS);
        interleavings += 1;
        if let Err(failure) = outcome {
            panic!("loom_lite: {failure} (after {interleavings} interleavings)");
        }
        if interleavings >= max_interleavings {
            let complete = !explorer.advance();
            return Report {
                interleavings,
                complete,
            };
        }
        if !explorer.advance() {
            return Report {
                interleavings,
                complete: true,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::AtomicUsize;
    use crate::sync::{Condvar, Mutex};
    use std::sync::atomic::{AtomicBool as StdAtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn two_increments_always_sum_to_two() {
        let report = model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = crate::thread::spawn(move || {
                c2.fetch_add(1);
            });
            c.fetch_add(1);
            t.join();
            assert_eq!(c.load(), 2);
        });
        assert!(report.complete);
        assert!(report.interleavings >= 2, "both orders must be explored");
    }

    #[test]
    fn mutex_guards_are_mutually_exclusive() {
        let report = model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = Arc::clone(&m);
            let t = crate::thread::spawn(move || {
                let mut g = m2.lock();
                let v = *g;
                *g = v + 1;
            });
            {
                let mut g = m.lock();
                let v = *g;
                *g = v + 1;
            }
            t.join();
            assert_eq!(*m.lock(), 2);
        });
        assert!(report.complete);
    }

    #[test]
    fn explorer_finds_the_lost_update() {
        // Unsynchronized read-modify-write: some schedule must lose one of
        // the two increments.  This is the positive control that the
        // explorer actually interleaves between atomic ops.
        let saw_lost = Arc::new(StdAtomicBool::new(false));
        let saw = Arc::clone(&saw_lost);
        let report = model(move || {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let saw = Arc::clone(&saw);
            let t = crate::thread::spawn(move || {
                let v = c2.load();
                c2.store(v + 1);
            });
            let v = c.load();
            c.store(v + 1);
            t.join();
            if c.load() == 1 {
                saw.store(true, Ordering::SeqCst);
            }
        });
        assert!(report.complete);
        assert!(
            saw_lost.load(Ordering::SeqCst),
            "exploration must reach the lost-update schedule"
        );
    }

    #[test]
    fn deadlock_is_detected() {
        let caught = std::panic::catch_unwind(|| {
            model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = crate::thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                let _gb = b.lock();
                let _ga = a.lock();
                drop((_gb, _ga));
                t.join();
            })
        });
        let msg = match caught {
            Ok(_) => panic!("AB-BA locking must deadlock under some schedule"),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
        };
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn condvar_handoff_never_loses_the_wakeup() {
        let report = model(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = Arc::clone(&state);
            let t = crate::thread::spawn(move || {
                let (m, cv) = &*s2;
                let mut ready = m.lock();
                *ready = true;
                cv.notify_all();
                drop(ready);
            });
            let (m, cv) = &*state;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
            drop(ready);
            t.join();
        });
        assert!(report.complete);
        assert!(report.interleavings >= 2);
    }
}
