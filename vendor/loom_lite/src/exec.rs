//! Execution machinery: virtual-thread states, the scheduling handshake,
//! and the per-execution driver.
//!
//! Virtual threads are real OS threads that park inside [`yield_op`] at
//! every operation on a virtual primitive; the driver (the thread that
//! called `model`) grants exactly one of them per step, so scenario code is
//! fully serialized between scheduling points.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use crate::Explorer;

/// Sentinel for "no second object" in an [`Op`].
pub(crate) const NO_OBJ: usize = usize::MAX;

/// Kinds of scheduling-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// Acquire a virtual mutex (`obj`); enabled only while it is free.
    Lock,
    /// Atomically release mutex `obj2` and block on condvar `obj`.
    CvWait,
    /// Wake every waiter of condvar `obj`.
    CvNotify,
    /// Atomic read-modify-write or store on `obj`.
    AtomicWrite,
    /// Atomic load of `obj` (commutes with other loads).
    AtomicLoad,
    /// Wait for virtual thread with thread-object `obj` (tid in `obj2`);
    /// enabled only once it has finished.
    Join,
}

/// One pending operation of a parked virtual thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Op {
    pub kind: OpKind,
    pub obj: usize,
    pub obj2: usize,
}

impl Op {
    fn is_read_only(self) -> bool {
        matches!(self.kind, OpKind::AtomicLoad | OpKind::Join)
    }

    fn touches(self, obj: usize) -> bool {
        obj != NO_OBJ && (self.obj == obj || self.obj2 == obj)
    }
}

/// True when the two operations commute: they touch disjoint objects, or
/// are both pure reads.  Used by the sleep-set filter; being conservative
/// (declaring more pairs dependent) only costs pruning, never soundness.
pub(crate) fn independent(a: Op, b: Op) -> bool {
    let shared = a.touches(b.obj) || a.touches(b.obj2);
    !shared || (a.is_read_only() && b.is_read_only())
}

/// Lifecycle of one virtual thread.
#[derive(Debug)]
pub(crate) enum Phase {
    /// Real thread spawned, not yet parked at its first scheduling point.
    Starting,
    /// Parked, pending operation declared, waiting for a grant.
    Waiting(Op),
    /// Granted by the driver; about to resume.
    Granted,
    /// Executing scenario code between scheduling points.
    Running,
    /// Parked on a virtual condvar until a notify re-arms it as a
    /// `Waiting(Lock)` on the associated mutex.
    BlockedCv { cv: usize },
    /// Scenario closure returned (or panicked; the failure is recorded).
    Finished,
}

pub(crate) struct ThreadState {
    pub phase: Phase,
    /// The thread's own object id (join target identity).
    pub obj: usize,
}

/// State of one virtual object.
pub(crate) enum ObjState {
    MutexObj { held_by: Option<usize> },
    /// Condvars, atomics and thread identities carry no driver-side state.
    Plain,
}

pub(crate) struct ExecState {
    pub threads: Vec<ThreadState>,
    pub objects: Vec<ObjState>,
    pub handles: Vec<Option<std::thread::JoinHandle<()>>>,
    /// Thread ids granted so far, in order — the replayable schedule.
    pub schedule: Vec<usize>,
    pub failure: Option<String>,
    /// Set when aborting: parked threads unwind instead of waiting forever.
    pub poisoned: bool,
    /// Per-thread mutex to re-acquire after a condvar wait is notified.
    pub cv_wait_mutex: Vec<usize>,
}

/// One execution's shared scheduling state.
pub(crate) struct Execution {
    pub state: Mutex<ExecState>,
    pub cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Runs `f` with the calling OS thread registered as virtual thread `tid`.
fn with_identity<R>(exec: Arc<Execution>, tid: usize, f: impl FnOnce() -> R) -> R {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
    let out = f();
    CURRENT.with(|c| *c.borrow_mut() = None);
    out
}

/// The calling thread's execution context; panics outside [`crate::model`].
pub(crate) fn current() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom_lite primitive used outside model()")
    })
}

/// Parks the calling virtual thread at a scheduling point with pending
/// operation `op`; returns once the driver grants it (for `CvWait`, once
/// the wait completed *and* the mutex was re-acquired).
pub(crate) fn yield_op(exec: &Execution, tid: usize, op: Op) {
    let mut st = exec.state.lock().unwrap();
    st.threads[tid].phase = Phase::Waiting(op);
    exec.cv.notify_all();
    loop {
        if st.poisoned {
            drop(st);
            panic!("loom_lite execution poisoned (aborting parked thread)");
        }
        if matches!(st.threads[tid].phase, Phase::Granted) {
            break;
        }
        st = exec.cv.wait(st).unwrap();
    }
    st.threads[tid].phase = Phase::Running;
    drop(st);
}

/// Registers a new virtual object; called from primitive constructors.
pub(crate) fn register_object(kind: ObjState) -> usize {
    let (exec, _) = current();
    let mut st = exec.state.lock().unwrap();
    st.objects.push(kind);
    st.objects.len() - 1
}

/// Releases virtual mutex `obj` (guard drop — not a scheduling point: the
/// whole critical section is coarsened into the acquisition).
pub(crate) fn release_mutex(exec: &Execution, obj: usize) {
    let mut st = exec.state.lock().unwrap();
    match &mut st.objects[obj] {
        ObjState::MutexObj { held_by } => *held_by = None,
        ObjState::Plain => unreachable!("released object is not a mutex"),
    }
    exec.cv.notify_all();
}

/// Spawns a virtual thread running `f`; blocks (in real time, without a
/// scheduling choice) until the child parks at its first scheduling point,
/// so scenario code stays serialized.  Returns the child's tid.
pub(crate) fn spawn_vthread(f: Box<dyn FnOnce() + Send>) -> usize {
    let (exec, _) = current();
    let tid;
    {
        let mut st = exec.state.lock().unwrap();
        tid = st.threads.len();
        let obj = {
            st.objects.push(ObjState::Plain);
            st.objects.len() - 1
        };
        st.threads.push(ThreadState {
            phase: Phase::Starting,
            obj,
        });
        st.cv_wait_mutex.push(NO_OBJ);
        let exec2 = Arc::clone(&exec);
        let handle = std::thread::Builder::new()
            .name(format!("loom-vthread-{tid}"))
            .spawn(move || vthread_main(exec2, tid, f))
            .expect("spawn loom_lite virtual thread");
        st.handles.push(Some(handle));
    }
    // Synchronous handoff: wait until the child parks (or finishes).  Code
    // before its first scheduling point must be thread-local setup, which
    // commutes with everything, so running it eagerly loses no schedules.
    let mut st = exec.state.lock().unwrap();
    while matches!(st.threads[tid].phase, Phase::Starting) {
        st = exec.cv.wait(st).unwrap();
    }
    drop(st);
    tid
}

/// Entry of every real thread backing a virtual thread.
fn vthread_main(exec: Arc<Execution>, tid: usize, f: Box<dyn FnOnce() + Send>) {
    let exec2 = Arc::clone(&exec);
    let result = with_identity(exec2, tid, || panic::catch_unwind(AssertUnwindSafe(f)));
    let mut st = exec.state.lock().unwrap();
    if let Err(payload) = result {
        if st.failure.is_none() && !st.poisoned {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            st.failure = Some(format!(
                "virtual thread {tid} panicked: {msg}; schedule so far: {:?}",
                st.schedule
            ));
        }
    }
    st.threads[tid].phase = Phase::Finished;
    exec.cv.notify_all();
}

impl ExecState {
    fn quiescent(&self) -> bool {
        self.threads.iter().all(|t| {
            matches!(
                t.phase,
                Phase::Waiting(_) | Phase::BlockedCv { .. } | Phase::Finished
            )
        })
    }

    fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.phase, Phase::Finished))
    }

    /// Parked threads whose pending operation can proceed right now.
    fn enabled(&self) -> Vec<(usize, Op)> {
        self.threads
            .iter()
            .enumerate()
            .filter_map(|(tid, t)| match t.phase {
                Phase::Waiting(op) => {
                    let ready = match op.kind {
                        OpKind::Lock => matches!(
                            self.objects[op.obj],
                            ObjState::MutexObj { held_by: None }
                        ),
                        OpKind::Join => {
                            matches!(self.threads[op.obj2].phase, Phase::Finished)
                        }
                        _ => true,
                    };
                    ready.then_some((tid, op))
                }
                _ => None,
            })
            .collect()
    }

    /// Applies the state transition of granting `tid`'s pending operation.
    fn apply_grant(&mut self, tid: usize) {
        let op = match self.threads[tid].phase {
            Phase::Waiting(op) => op,
            ref p => unreachable!("granting a thread in phase {p:?}"),
        };
        self.schedule.push(tid);
        match op.kind {
            OpKind::Lock => {
                match &mut self.objects[op.obj] {
                    ObjState::MutexObj { held_by } => {
                        debug_assert!(held_by.is_none(), "granted lock on a held mutex");
                        *held_by = Some(tid);
                    }
                    ObjState::Plain => unreachable!("locked object is not a mutex"),
                }
                self.threads[tid].phase = Phase::Granted;
            }
            OpKind::CvWait => {
                match &mut self.objects[op.obj2] {
                    ObjState::MutexObj { held_by } => {
                        debug_assert_eq!(*held_by, Some(tid), "cv-wait without the mutex");
                        *held_by = None;
                    }
                    ObjState::Plain => unreachable!("cv-wait object is not a mutex"),
                }
                // The thread stays parked; a notify re-arms it as a plain
                // lock acquisition of the associated mutex.
                self.threads[tid].phase = Phase::BlockedCv { cv: op.obj };
                let mutex = op.obj2;
                // Remember the mutex to re-acquire via the op it will carry.
                // (Stored in the re-armed Waiting op at notify time.)
                self.cv_wait_mutex[tid] = mutex;
            }
            OpKind::CvNotify => {
                for t in 0..self.threads.len() {
                    if let Phase::BlockedCv { cv } = self.threads[t].phase {
                        if cv == op.obj {
                            self.threads[t].phase = Phase::Waiting(Op {
                                kind: OpKind::Lock,
                                obj: self.cv_wait_mutex[t],
                                obj2: NO_OBJ,
                            });
                        }
                    }
                }
                self.threads[tid].phase = Phase::Granted;
            }
            OpKind::AtomicWrite | OpKind::AtomicLoad | OpKind::Join => {
                self.threads[tid].phase = Phase::Granted;
            }
        }
    }
}

/// Runs one execution of `scenario` under the explorer's current path.
/// Returns `Err` with a diagnostic on panic, deadlock, or step-bound
/// overflow.
pub(crate) fn run_one(
    scenario: Arc<dyn Fn() + Send + Sync>,
    explorer: &mut Explorer,
    max_steps: usize,
) -> Result<(), String> {
    let exec = Arc::new(Execution {
        state: Mutex::new(ExecState {
            threads: Vec::new(),
            objects: Vec::new(),
            handles: Vec::new(),
            schedule: Vec::new(),
            failure: None,
            poisoned: false,
            cv_wait_mutex: Vec::new(),
        }),
        cv: Condvar::new(),
    });

    // Register and start virtual thread 0 (the scenario closure itself).
    {
        let mut st = exec.state.lock().unwrap();
        st.objects.push(ObjState::Plain);
        st.threads.push(ThreadState {
            phase: Phase::Starting,
            obj: 0,
        });
        st.cv_wait_mutex.push(NO_OBJ);
        let exec2 = Arc::clone(&exec);
        let handle = std::thread::Builder::new()
            .name("loom-vthread-0".to_string())
            .spawn(move || vthread_main(exec2, 0, Box::new(move || scenario())))
            .expect("spawn loom_lite root virtual thread");
        st.handles.push(Some(handle));
    }

    let mut depth = 0usize;
    let failure = loop {
        let mut st = exec.state.lock().unwrap();
        while !st.quiescent() && st.failure.is_none() {
            st = exec.cv.wait(st).unwrap();
        }
        if let Some(f) = st.failure.clone() {
            break Some(f);
        }
        if st.all_finished() {
            break None;
        }
        let enabled = st.enabled();
        if enabled.is_empty() {
            break Some(format!(
                "deadlock: no runnable virtual thread; schedule so far: {:?}",
                st.schedule
            ));
        }
        if depth >= max_steps {
            break Some(format!(
                "schedule exceeded {max_steps} steps (livelock under this interleaving?)"
            ));
        }
        let tid = explorer.choose(depth, &enabled);
        st.apply_grant(tid);
        exec.cv.notify_all();
        depth += 1;
    };

    // Tear down: on failure, poison so parked threads unwind; then join
    // every real thread either way so no OS threads leak across executions.
    let handles: Vec<_> = {
        let mut st = exec.state.lock().unwrap();
        if failure.is_some() {
            st.poisoned = true;
        }
        exec.cv.notify_all();
        st.handles.iter_mut().map(|h| h.take()).collect()
    };
    for handle in handles.into_iter().flatten() {
        let _ = handle.join();
    }
    // A panic recorded between the grant loop and teardown still fails.
    let late_failure = exec.state.lock().unwrap().failure.clone();
    match failure.or(late_failure) {
        Some(f) => Err(f),
        None => Ok(()),
    }
}
