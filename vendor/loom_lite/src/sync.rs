//! Virtual synchronization primitives.  Every operation is a scheduling
//! point (see crate docs); construction only registers the object with the
//! current execution and must therefore happen inside [`crate::model`].

use crate::exec::{self, ObjState, Op, OpKind, NO_OBJ};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Virtual mutex.  `lock()` parks until the driver grants the acquisition;
/// the whole critical section is one scheduling point.
pub struct Mutex<T> {
    cell: UnsafeCell<T>,
    obj: usize,
    exec: Arc<exec::Execution>,
}

// SAFETY: the driver grants at most one `Lock` per mutex between releases
// (asserted in `apply_grant`), so `cell` is only ever accessed by the single
// virtual thread holding the guard, across real threads that are themselves
// serialized by the `Execution` handshake.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: see the `Send` justification — guarded exclusive access only.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let (exec, _) = exec::current();
        let obj = exec::register_object(ObjState::MutexObj { held_by: None });
        Mutex {
            cell: UnsafeCell::new(value),
            obj,
            exec,
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (_, tid) = exec::current();
        exec::yield_op(
            &self.exec,
            tid,
            Op {
                kind: OpKind::Lock,
                obj: self.obj,
                obj2: NO_OBJ,
            },
        );
        MutexGuard { mutex: self }
    }
}

/// RAII guard of a virtual [`Mutex`]; releasing is not a scheduling point.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while the driver records this virtual
        // thread as the mutex holder, so access is exclusive.
        unsafe { &*self.mutex.cell.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the holder has exclusive access.
        unsafe { &mut *self.mutex.cell.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        exec::release_mutex(&self.mutex.exec, self.mutex.obj);
    }
}

/// Virtual condition variable with no spurious wakeups: a waiter resumes
/// only after a notify (lost-wakeup schedules are still explored because
/// wait and notify conflict on the condvar object).
pub struct Condvar {
    obj: usize,
    exec: Arc<exec::Execution>,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let (exec, _) = exec::current();
        let obj = exec::register_object(ObjState::Plain);
        Condvar { obj, exec }
    }

    /// Atomically releases the guard's mutex and blocks until notified;
    /// returns with the mutex re-acquired.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex;
        debug_assert!(
            Arc::ptr_eq(&mutex.exec, &self.exec),
            "condvar and mutex belong to different executions"
        );
        // The CvWait grant releases the mutex driver-side; skip the guard's
        // own release by forgetting it (it holds no other resources).
        std::mem::forget(guard);
        let (_, tid) = exec::current();
        exec::yield_op(
            &self.exec,
            tid,
            Op {
                kind: OpKind::CvWait,
                obj: self.obj,
                obj2: mutex.obj,
            },
        );
        // yield_op returned: the driver re-granted the mutex to this thread.
        MutexGuard { mutex }
    }

    pub fn notify_all(&self) {
        let (_, tid) = exec::current();
        exec::yield_op(
            &self.exec,
            tid,
            Op {
                kind: OpKind::CvNotify,
                obj: self.obj,
                obj2: NO_OBJ,
            },
        );
    }
}

pub mod atomic {
    //! Virtual atomics.  Sequentially consistent only: the driver's schedule
    //! order is the single modification order all threads observe.

    use super::*;
    use std::sync::atomic::Ordering;

    /// Virtual `AtomicUsize`; every access is a scheduling point.
    pub struct AtomicUsize {
        val: std::sync::atomic::AtomicUsize,
        obj: usize,
        exec: Arc<exec::Execution>,
    }

    impl AtomicUsize {
        pub fn new(value: usize) -> Self {
            let (exec, _) = exec::current();
            let obj = exec::register_object(ObjState::Plain);
            AtomicUsize {
                val: std::sync::atomic::AtomicUsize::new(value),
                obj,
                exec,
            }
        }

        fn yield_here(&self, kind: OpKind) {
            let (_, tid) = exec::current();
            exec::yield_op(
                &self.exec,
                tid,
                Op {
                    kind,
                    obj: self.obj,
                    obj2: NO_OBJ,
                },
            );
        }

        pub fn load(&self) -> usize {
            self.yield_here(OpKind::AtomicLoad);
            self.val.load(Ordering::SeqCst)
        }

        pub fn store(&self, value: usize) {
            self.yield_here(OpKind::AtomicWrite);
            self.val.store(value, Ordering::SeqCst)
        }

        pub fn fetch_add(&self, value: usize) -> usize {
            self.yield_here(OpKind::AtomicWrite);
            self.val.fetch_add(value, Ordering::SeqCst)
        }

        pub fn fetch_sub(&self, value: usize) -> usize {
            self.yield_here(OpKind::AtomicWrite);
            self.val.fetch_sub(value, Ordering::SeqCst)
        }
    }

    /// Virtual `AtomicBool`; every access is a scheduling point.
    pub struct AtomicBool {
        val: std::sync::atomic::AtomicBool,
        obj: usize,
        exec: Arc<exec::Execution>,
    }

    impl AtomicBool {
        pub fn new(value: bool) -> Self {
            let (exec, _) = exec::current();
            let obj = exec::register_object(ObjState::Plain);
            AtomicBool {
                val: std::sync::atomic::AtomicBool::new(value),
                obj,
                exec,
            }
        }

        pub fn load(&self) -> bool {
            let (_, tid) = exec::current();
            exec::yield_op(
                &self.exec,
                tid,
                Op {
                    kind: OpKind::AtomicLoad,
                    obj: self.obj,
                    obj2: NO_OBJ,
                },
            );
            self.val.load(Ordering::SeqCst)
        }

        pub fn store(&self, value: bool) {
            let (_, tid) = exec::current();
            exec::yield_op(
                &self.exec,
                tid,
                Op {
                    kind: OpKind::AtomicWrite,
                    obj: self.obj,
                    obj2: NO_OBJ,
                },
            );
            self.val.store(value, Ordering::SeqCst)
        }
    }
}
