//! Virtual threads.  [`spawn`] registers a new virtual thread with the
//! current execution; [`JoinHandle::join`] is a scheduling point enabled
//! only once the target finished.  A panic on a virtual thread is reported
//! through the execution's global failure (with the failing schedule), so
//! `join` returns `()` rather than a `Result`.

use crate::exec::{self, Op, OpKind};

/// Handle to a virtual thread spawned with [`spawn`].
pub struct JoinHandle {
    tid: usize,
}

impl JoinHandle {
    /// Blocks (as a scheduling point) until the target virtual thread has
    /// finished.  Target panics abort the whole execution instead of being
    /// returned here.
    pub fn join(self) {
        let (exec, tid) = exec::current();
        let target_obj = {
            let st = exec.state.lock().unwrap();
            st.threads[self.tid].obj
        };
        exec::yield_op(
            &exec,
            tid,
            Op {
                kind: OpKind::Join,
                obj: target_obj,
                obj2: self.tid,
            },
        );
    }
}

/// Spawns a virtual thread running `f`.  Must be called from inside
/// [`crate::model`]; `f` runs serialized with all other virtual threads.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let tid = exec::spawn_vthread(Box::new(f));
    JoinHandle { tid }
}
