//! Offline stand-in for `criterion`.
//!
//! Implements the group/bencher API surface the PPFR benches use with plain
//! wall-clock timing: each benchmark warms up briefly, then runs timed
//! batches until the measurement budget is spent and reports the mean
//! time per iteration.  No statistics, plots or HTML — just enough to keep
//! `cargo bench` meaningful offline.

use std::time::{Duration, Instant};

/// Opaque to the optimiser; prevents dead-code elimination of bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batching strategy for [`Bencher::iter_batched`] (accepted for API
/// compatibility; every batch re-runs the setup closure here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measurement settings shared by a group or a standalone benchmark.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Times one closure invocation stream under the given settings and returns
/// the mean duration per iteration.
fn measure(settings: &Settings, mut run_one: impl FnMut()) -> Duration {
    let warm_until = Instant::now() + settings.warm_up_time;
    run_one();
    while Instant::now() < warm_until {
        run_one();
    }
    let mut iters: u64 = 0;
    let started = Instant::now();
    let budget = settings.measurement_time;
    loop {
        run_one();
        iters += 1;
        let elapsed = started.elapsed();
        if iters >= settings.sample_size as u64 && elapsed >= budget {
            break;
        }
        // A single very slow iteration must not run the sample count out to
        // many multiples of the budget.
        if elapsed >= 4 * budget {
            break;
        }
    }
    started.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX)
}

fn report(name: &str, per_iter: Duration) {
    println!("{name:<50} time: {per_iter:>12.3?}/iter");
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher<'a> {
    settings: &'a Settings,
    name: String,
}

impl Bencher<'_> {
    /// Times `routine` and reports the mean per-iteration duration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let per_iter = measure(self.settings, || {
            black_box(routine());
        });
        report(&self.name, per_iter);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from no measurement here (each iteration re-runs setup, as with
    /// `BatchSize::PerIteration` upstream) — comparisons within this harness
    /// remain apples-to-apples.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let per_iter = measure(self.settings, || {
            let input = setup();
            black_box(routine(input));
        });
        report(&self.name, per_iter);
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        let mut b = Bencher {
            settings: &self.settings,
            name: full,
        };
        f(&mut b);
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to flush).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            name: name.into(),
            settings,
            _criterion: self,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher {
            settings: &self.settings,
            name,
        };
        f(&mut b);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_settings() -> Settings {
        Settings {
            sample_size: 3,
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn measure_counts_at_least_sample_size_iterations() {
        let mut count = 0u64;
        let settings = fast_settings();
        let d = measure(&settings, || count += 1);
        assert!(count >= 3);
        assert!(d > Duration::ZERO || count > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(2));
        group.warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        group.finish();
        assert!(ran);
    }
}
