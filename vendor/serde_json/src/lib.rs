//! Offline stand-in for `serde_json`: prints and parses the vendored
//! [`serde::Value`] tree as standard JSON.
//!
//! Numbers with no fractional part inside the exactly-representable integer
//! range print without a decimal point; non-finite floats print as `null`
//! (JSON has no NaN/Inf) and parse back as `NaN`.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialises a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(
            out,
            items.iter(),
            indent,
            level,
            ('[', ']'),
            |out, item, ind, lvl| {
                write_value(out, item, ind, lvl);
            },
        ),
        Value::Obj(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            level,
            ('{', '}'),
            |out, (k, val), ind, lvl| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, lvl);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    (open, close): (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * level));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::msg(e.to_string()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::msg("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::msg("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences included).
                    let s = std::str::from_utf8(rest).map_err(|e| Error::msg(e.to_string()))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_values() {
        let v: Vec<(String, f64)> = vec![("euclid\"esc".into(), 0.5), ("cos".into(), -3.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(to_string(&3.5f64).unwrap(), "3.5");
        assert_eq!(to_string(&-0.25f64).unwrap(), "-0.25");
    }

    #[test]
    fn non_finite_serialises_as_null_and_parses_as_nan() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<f64>> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = from_str(r#""aA\n\t\\""#).unwrap();
        assert_eq!(s, "aA\n\t\\");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.0 x").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
    }
}
