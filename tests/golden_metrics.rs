//! Golden-metric regression suite.
//!
//! Executes the fixed `golden-small` scenario (2 small SBM datasets × GCN ×
//! all five methods × 2 seeds) and compares every aggregated metric —
//! accuracy, bias, mean attack AUC, worst-case threat AUC, the Δ metrics
//! and the per-distance / per-threat AUCs — against the committed snapshot
//! `tests/golden/golden_small.json`, with per-metric tolerances that absorb
//! cross-machine libm drift but catch behavioural regressions.
//!
//! The same execution is repeated under forced `PPFR_NUM_THREADS` ∈ {1, 4}
//! and must be **bit-identical** across thread counts, and a cache-warm
//! re-run must be bit-identical to the cold run.
//!
//! Regenerate the snapshot after an intentional metric change with:
//!
//! ```sh
//! PPFR_UPDATE_GOLDEN=1 cargo test -q -p ppfr --test golden_metrics
//! ```

use ppfr_runner::{run_scenario, ArtifactCache, MatrixReport, ScenarioSpec};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/golden_small.json")
}

/// Comparison tolerance per metric family, given the golden value.  The raw
/// metrics get tight absolute budgets; the Δ metrics of Eq. (22) divide
/// small relative changes by other small relative changes, so drift is
/// amplified and their budget is absolute-or-relative, whichever is wider.
fn tolerance(metric: &str, golden_value: f64) -> f64 {
    let relative = |abs: f64, rel: f64| abs.max(rel * golden_value.abs());
    match metric {
        "acc" => 5e-3,
        "bias" => 2e-3,
        "risk_auc" | "worst_risk_auc" | "risk_gap" => 5e-3,
        "d_acc_pct" | "d_bias_pct" | "d_risk_pct" => relative(1.0, 0.05),
        "delta" => relative(0.25, 0.15),
        m if m.starts_with("auc_dist:") || m.starts_with("auc_threat:") => 5e-3,
        other => panic!("no tolerance defined for metric {other}"),
    }
}

fn compare_against_golden(report: &MatrixReport, golden: &MatrixReport) {
    assert_eq!(report.scenario, golden.scenario, "scenario name changed");
    assert_eq!(report.seeds, golden.seeds, "seed axis changed");
    assert_eq!(
        report.summaries.len(),
        golden.summaries.len(),
        "summary row count changed: got {}, golden has {} — regenerate with PPFR_UPDATE_GOLDEN=1 if intentional",
        report.summaries.len(),
        golden.summaries.len()
    );
    let mut failures = Vec::new();
    for (got, want) in report.summaries.iter().zip(golden.summaries.iter()) {
        assert_eq!(
            (&got.dataset, &got.model, &got.method, &got.metric),
            (&want.dataset, &want.model, &want.method, &want.metric),
            "summary rows out of alignment"
        );
        for (stat, g, w) in [
            ("mean", got.stats.mean, want.stats.mean),
            ("std", got.stats.std, want.stats.std),
            ("min", got.stats.min, want.stats.min),
            ("max", got.stats.max, want.stats.max),
        ] {
            let tol = tolerance(&got.metric, w);
            if (g - w).abs() > tol {
                failures.push(format!(
                    "{}/{}/{}/{} {stat}: got {g}, golden {w} (tol {tol})",
                    got.dataset, got.model, got.method, got.metric
                ));
            }
        }
        assert_eq!(
            got.stats.n, want.stats.n,
            "{}: run count changed",
            got.metric
        );
    }
    assert!(
        failures.is_empty(),
        "{} metric(s) regressed vs tests/golden/golden_small.json \
         (regenerate with PPFR_UPDATE_GOLDEN=1 if the change is intentional):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn golden_small_matrix_matches_snapshot_across_thread_counts() {
    let spec = ScenarioSpec::golden_small();

    // Cold run at 1 forced worker thread, then a cold run at 4: the report
    // must be bit-identical (same guarantee as the kernel layer's
    // serial/parallel twins).
    let cache = ArtifactCache::new();
    let report_t1 = ppfr_linalg::parallel::with_forced_threads(1, || run_scenario(&spec, &cache))
        .expect("golden scenario is valid");
    let report_t4 = ppfr_linalg::parallel::with_forced_threads(4, || {
        run_scenario(&spec, &ArtifactCache::new())
    })
    .expect("golden scenario is valid");
    assert_eq!(
        report_t1.to_json(),
        report_t4.to_json(),
        "golden matrix differs between 1 and 4 forced threads"
    );

    // Cache-warm re-run (same cache as the first execution): bit-identical.
    let warm = run_scenario(&spec, &cache).expect("golden scenario is valid");
    assert_eq!(
        report_t1.to_json(),
        warm.to_json(),
        "cache-warm golden matrix differs from cold"
    );
    assert!(cache.hits() > 0, "warm run did not hit the artifact cache");

    let path = golden_path();
    if std::env::var("PPFR_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, report_t1.to_json()).expect("write golden snapshot");
        eprintln!("regenerated {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with PPFR_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let golden: MatrixReport = serde_json::from_str(&text).expect("parse golden snapshot");
    compare_against_golden(&report_t1, &golden);
}
