//! Integration tests for the paper's analytical claims (RQ1, Lemma V.1,
//! Eq. 5, Eq. 20) on the synthetic datasets.

use ppfr_core::{evaluate, run_method, Method, PpfrConfig};
use ppfr_datasets::{cora, generate, two_block_synthetic, DatasetSpec};
use ppfr_gnn::ModelKind;
use ppfr_graph::{
    hop_histogram, intra_inter_probabilities, jaccard_similarity, shortest_hops_from,
};
use ppfr_privacy::{edge_sensitivity, EdgeSensitivityInputs};

fn small_cora() -> DatasetSpec {
    DatasetSpec {
        n_nodes: 500,
        n_val: 80,
        n_test: 150,
        ..cora()
    }
}

#[test]
fn rq1_fairness_regularisation_reduces_bias_without_reducing_risk() {
    // Proposition V.2 / §VII-A: on a homophilous sparse graph, adding the
    // InFoRM regulariser reduces bias while the edge-leakage AUC does not
    // improve (and typically worsens).
    let dataset = generate(&small_cora(), 7);
    let cfg = PpfrConfig {
        vanilla_epochs: 120,
        ..PpfrConfig::smoke()
    };
    let vanilla = run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
    let reg = run_method(&dataset, ModelKind::Gcn, Method::Reg, &cfg);
    let e_vanilla = evaluate(&vanilla, &dataset, &cfg);
    let e_reg = evaluate(&reg, &dataset, &cfg);

    assert!(
        e_reg.bias < e_vanilla.bias,
        "the regulariser must reduce bias: {} vs {}",
        e_reg.bias,
        e_vanilla.bias
    );
    assert!(
        e_reg.risk_auc >= e_vanilla.risk_auc - 0.01,
        "privacy risk should not improve when only fairness is optimised: Reg {} vs vanilla {}",
        e_reg.risk_auc,
        e_vanilla.risk_auc
    );
}

#[test]
fn lemma_v1_similarity_support_is_exactly_the_two_hop_neighbourhood() {
    let dataset = generate(&two_block_synthetic(), 7);
    let s = jaccard_similarity(&dataset.graph);
    let n = dataset.graph.n_nodes();
    for i in (0..n).step_by(7) {
        let hops = shortest_hops_from(&dataset.graph, i);
        for (j, &hop) in hops.iter().enumerate() {
            if i == j {
                continue;
            }
            let within_two = hop <= 2;
            let positive = s.get(i, j) > 0.0;
            assert_eq!(
                within_two,
                positive,
                "pair ({i},{j}) hop {hop} similarity {}",
                s.get(i, j)
            );
        }
    }
}

#[test]
fn eq5_two_hop_pairs_are_a_small_fraction_of_unconnected_pairs() {
    // The sparsity argument behind Proposition V.2: the ratio of 2-hop pairs
    // among unconnected pairs, (p+q)²/(1-(p+q)) per Eq. (5), stays small on
    // sparse homophilous graphs, and the empirical count agrees in order of
    // magnitude.
    let dataset = generate(&small_cora(), 7);
    let (p, q) = intra_inter_probabilities(&dataset.graph, &dataset.labels);
    let theoretical_ratio = (p + q).powi(2) / (1.0 - (p + q));
    assert!(
        theoretical_ratio < 0.05,
        "theoretical 2-hop ratio too large: {theoretical_ratio}"
    );

    let (hist, _unreachable) = hop_histogram(&dataset.graph, 3);
    let n = dataset.graph.n_nodes();
    let total_pairs = n * (n - 1) / 2;
    let unconnected = total_pairs - hist[1];
    let two_hop_fraction = hist[2] as f64 / unconnected as f64;
    assert!(
        two_hop_fraction < 0.25,
        "2-hop pairs should be a minority of unconnected pairs, got {two_hop_fraction}"
    );
}

#[test]
fn eq20_risk_model_ranks_models_by_class_separation() {
    // A GNN that separates the classes better (larger ‖μ1 − μ0‖) has larger
    // expected edge sensitivity, i.e. leaks more.
    let weak = EdgeSensitivityInputs {
        class_mean_gap: 0.3,
        degree_i: 4,
        hetero_neighbors_i: 1,
        degree_j: 9,
        hetero_neighbors_j: 3,
    };
    let strong = EdgeSensitivityInputs {
        class_mean_gap: 2.5,
        ..weak
    };
    assert!(edge_sensitivity(&strong) > edge_sensitivity(&weak));
}

#[test]
fn heterophilic_perturbation_restrains_risk_compared_to_fairness_only() {
    // Fig. 6 panels (left vs right): with the same FR fine-tuning budget,
    // adding the PP heterophilic edges must not leave the model leakier.
    let dataset = generate(&two_block_synthetic(), 77);
    let cfg = PpfrConfig {
        vanilla_epochs: 80,
        influence_cg_iters: 8,
        ..PpfrConfig::smoke()
    };
    let dpfr_free = {
        // FR only: PPFR with a zero perturbation ratio.
        let cfg_zero = PpfrConfig {
            perturb_ratio: 0.0,
            ..cfg.clone()
        };
        let outcome = run_method(&dataset, ModelKind::Gcn, Method::Ppfr, &cfg_zero);
        evaluate(&outcome, &dataset, &cfg_zero)
    };
    let with_pp = {
        let cfg_pp = PpfrConfig {
            perturb_ratio: 1.5,
            ..cfg.clone()
        };
        let outcome = run_method(&dataset, ModelKind::Gcn, Method::Ppfr, &cfg_pp);
        evaluate(&outcome, &dataset, &cfg_pp)
    };
    assert!(
        with_pp.risk_auc <= dpfr_free.risk_auc + 0.02,
        "heterophilic perturbation should restrain risk: with PP {} vs FR-only {}",
        with_pp.risk_auc,
        dpfr_free.risk_auc
    );
}
