//! End-to-end integration tests spanning every crate: dataset generation →
//! GNN training → fairness/privacy evaluation → PPFR pipeline → Δ metrics.

use ppfr_core::{deltas, evaluate, run_method, Method, PpfrConfig};
use ppfr_datasets::{generate, two_block_synthetic};
use ppfr_gnn::{GnnModel, ModelKind};

fn fast_cfg() -> PpfrConfig {
    PpfrConfig {
        vanilla_epochs: 60,
        influence_cg_iters: 8,
        ..PpfrConfig::smoke()
    }
}

#[test]
fn full_pipeline_runs_for_every_model_and_method() {
    let dataset = generate(&two_block_synthetic(), 71);
    let cfg = fast_cfg();
    for kind in ModelKind::ALL {
        let vanilla = run_method(&dataset, kind, Method::Vanilla, &cfg);
        let reference = evaluate(&vanilla, &dataset, &cfg);
        assert!(
            reference.accuracy > 0.6,
            "{}: vanilla accuracy {} too low to interpret the other metrics",
            kind.name(),
            reference.accuracy
        );
        for method in Method::COMPARED {
            let outcome = run_method(&dataset, kind, method, &cfg);
            let eval = evaluate(&outcome, &dataset, &cfg);
            let d = deltas(&reference, &eval);
            assert!(
                eval.accuracy.is_finite() && eval.bias.is_finite() && eval.risk_auc.is_finite()
            );
            assert!(
                d.delta.is_finite(),
                "{} / {}: Δ metric must be finite",
                kind.name(),
                method.name()
            );
        }
    }
}

#[test]
fn ppfr_reduces_bias_relative_to_vanilla() {
    let dataset = generate(&two_block_synthetic(), 72);
    let cfg = fast_cfg();
    let vanilla = run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
    let ppfr = run_method(&dataset, ModelKind::Gcn, Method::Ppfr, &cfg);
    let reference = evaluate(&vanilla, &dataset, &cfg);
    let ours = evaluate(&ppfr, &dataset, &cfg);
    assert!(
        ours.bias < reference.bias,
        "PPFR fine-tuning must reduce the InFoRM bias: {} vs vanilla {}",
        ours.bias,
        reference.bias
    );
}

#[test]
fn ppfr_controls_risk_better_than_reg() {
    // The central claim of RQ2: PPFR restrains the privacy-risk increase that
    // the pure fairness regulariser causes.
    let dataset = generate(&two_block_synthetic(), 73);
    let cfg = fast_cfg();
    let vanilla = run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
    let reg = run_method(&dataset, ModelKind::Gcn, Method::Reg, &cfg);
    let ppfr = run_method(&dataset, ModelKind::Gcn, Method::Ppfr, &cfg);
    let e_vanilla = evaluate(&vanilla, &dataset, &cfg);
    let e_reg = evaluate(&reg, &dataset, &cfg);
    let e_ppfr = evaluate(&ppfr, &dataset, &cfg);
    assert!(
        e_ppfr.risk_auc <= e_reg.risk_auc + 0.02,
        "PPFR risk (AUC {:.4}) should not exceed the Reg baseline's (AUC {:.4})",
        e_ppfr.risk_auc,
        e_reg.risk_auc
    );
    // And it must stay a usable classifier.
    assert!(
        e_ppfr.accuracy > 0.6 * e_vanilla.accuracy,
        "PPFR accuracy collapsed: {} vs vanilla {}",
        e_ppfr.accuracy,
        e_vanilla.accuracy
    );
}

#[test]
fn perturbed_deployment_graphs_do_not_leak_into_the_attack_sample() {
    // The attack is always evaluated against the original confidential edges,
    // not against whatever noisy graph a defence deploys.
    let dataset = generate(&two_block_synthetic(), 74);
    let cfg = fast_cfg();
    let ppfr = run_method(&dataset, ModelKind::Gcn, Method::Ppfr, &cfg);
    assert!(ppfr.deploy_ctx.graph.n_edges() > dataset.graph.n_edges());
    let sample = ppfr_core::attack_sample(&dataset, &cfg);
    for &(u, v) in &sample.positives {
        assert!(
            dataset.graph.has_edge(u, v),
            "positive pair must be an original edge"
        );
    }
    for &(u, v) in &sample.negatives {
        assert!(
            !dataset.graph.has_edge(u, v),
            "negative pair must not be an original edge"
        );
    }
}

#[test]
fn trained_outcome_predictions_are_valid_probability_rows() {
    let dataset = generate(&two_block_synthetic(), 75);
    let cfg = fast_cfg();
    for method in [Method::Vanilla, Method::Ppfr] {
        let outcome = run_method(&dataset, ModelKind::GraphSage, method, &cfg);
        let probs = ppfr_core::predictions(&outcome, &cfg);
        assert_eq!(probs.rows(), dataset.n_nodes());
        assert_eq!(probs.cols(), outcome.model.n_classes());
        for r in 0..probs.rows() {
            let sum: f64 = probs.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {r} sums to {sum}");
            assert!(probs.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
