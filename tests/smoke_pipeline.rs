//! Smoke test: the full PPFR pipeline — every training strategy of the paper —
//! must run end to end on the two-block synthetic at [`ExperimentScale::smoke`]
//! scale and stay fast enough for CI (a few seconds, not minutes).

use ppfr_core::{evaluate, run_method, ExperimentScale, Method};
use ppfr_datasets::{generate, two_block_synthetic};
use ppfr_gnn::ModelKind;
use std::time::{Duration, Instant};

#[test]
fn all_five_methods_run_end_to_end_at_smoke_scale() {
    let scale = ExperimentScale::smoke();
    let cfg = scale.config();
    let dataset = generate(&two_block_synthetic(), cfg.seed);
    let started = Instant::now();

    for method in [
        Method::Vanilla,
        Method::Reg,
        Method::DpReg,
        Method::DpFr,
        Method::Ppfr,
    ] {
        let outcome = run_method(&dataset, ModelKind::Gcn, method, &cfg);
        assert_eq!(outcome.method, method);
        let eval = evaluate(&outcome, &dataset, &cfg);
        assert!(
            (0.0..=1.0).contains(&eval.accuracy),
            "{}: accuracy {} out of [0, 1]",
            method.name(),
            eval.accuracy
        );
        assert!(eval.bias.is_finite(), "{}: non-finite bias", method.name());
        assert!(
            (0.0..=1.0).contains(&eval.risk_auc),
            "{}: attack AUC {} out of [0, 1]",
            method.name(),
            eval.risk_auc
        );
        // At smoke scale the GCN must still beat random guessing on the
        // two-block synthetic — anything below 1/2 means training is broken.
        if method == Method::Vanilla {
            assert!(
                eval.accuracy > 0.5,
                "vanilla smoke accuracy {} is no better than chance",
                eval.accuracy
            );
        }
    }

    // Generous ceiling, asserted only for optimised builds: catches
    // accidental full-scale regressions (full scale takes minutes, not
    // seconds) without flaking debug-profile CI runs on contended runners.
    let elapsed = started.elapsed();
    println!("smoke pipeline: five methods in {elapsed:?}");
    if !cfg!(debug_assertions) {
        assert!(
            elapsed < Duration::from_secs(60),
            "smoke pipeline took {elapsed:?}; smoke scale should be seconds, not minutes"
        );
    }
}
