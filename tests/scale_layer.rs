//! Scale-test layer: pins the large-graph code paths — neighbour-sampled
//! training, streamed bias, the capped attack sample and the end-to-end
//! scale scenario — at sizes CI can afford, plus an `#[ignore]`d release
//! smoke of the full million-node scenario.
//!
//! The statistical contract: neighbour-sampled training is a *different*
//! estimator than full-batch training, so per-seed results differ; what must
//! hold is that the multi-seed mean accuracy stays within the golden
//! tolerance of the full-batch mean (and both fit the training set).  The
//! CI `scale-layer` job runs this file at forced `PPFR_NUM_THREADS` ∈ {1, 4}.

use ppfr_datasets::sparse_sbm_dataset;
use ppfr_gnn::{
    train_sampled, train_with_workspace, AnyModel, GraphContext, ModelKind, SampledContext,
    TrainConfig, TrainWorkspace,
};
use ppfr_runner::{run_scale_scenario, ScaleReport, ScaleSpec};

/// Multi-seed tolerance between the sampled-training and full-batch mean
/// accuracies.  Mirrors the golden suite's metric tolerance: the two
/// estimators see the same data and must land on statistically equivalent
/// fits, not bit-identical ones.
const MEAN_ACCURACY_TOLERANCE: f64 = 0.05;

/// Seeds of the statistical comparison (averaging washes out per-seed
/// sampling noise).
const SEEDS: [u64; 3] = [3, 11, 29];

/// Trains one GCN full-batch and one neighbour-sampled on the same n=5000
/// sparse SBM draw; returns `(full_accuracy, sampled_accuracy)`.
fn train_both(seed: u64) -> (f64, f64) {
    let ds = sparse_sbm_dataset(5_000, 4, 6.0, 1.5, 32, seed);
    let weights = vec![1.0; ds.splits.train.len()];
    let cfg = TrainConfig {
        epochs: 30,
        lr: 0.05,
        weight_decay: 5e-4,
        seed,
    };

    let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
    let mut full_model = AnyModel::new(ModelKind::Gcn, ds.features.cols(), 16, ds.n_classes, seed);
    let mut ws = TrainWorkspace::new();
    let full = train_with_workspace(
        &mut full_model,
        &ctx,
        &ds.labels,
        &ds.splits.train,
        &weights,
        None,
        &cfg,
        &mut ws,
    );

    let mut sctx = SampledContext::new(ds.graph.clone(), ds.features.clone(), 4);
    let mut sampled_model =
        AnyModel::new(ModelKind::Gcn, ds.features.cols(), 16, ds.n_classes, seed);
    let mut ws = TrainWorkspace::new();
    let sampled = train_sampled(
        &mut sampled_model,
        &mut sctx,
        &ds.labels,
        &ds.splits.train,
        &weights,
        None,
        &cfg,
        &mut ws,
    );

    (full.train_accuracy, sampled.train_accuracy)
}

#[test]
fn sampled_training_matches_full_batch_accuracy_at_5k_nodes() {
    let mut full_sum = 0.0;
    let mut sampled_sum = 0.0;
    for seed in SEEDS {
        let (full, sampled) = train_both(seed);
        assert!(
            full > 0.8,
            "full-batch training failed to fit at seed {seed}: {full}"
        );
        assert!(
            sampled > 0.8,
            "sampled training failed to fit at seed {seed}: {sampled}"
        );
        full_sum += full;
        sampled_sum += sampled;
    }
    let full_mean = full_sum / SEEDS.len() as f64;
    let sampled_mean = sampled_sum / SEEDS.len() as f64;
    assert!(
        (full_mean - sampled_mean).abs() <= MEAN_ACCURACY_TOLERANCE,
        "sampled-training mean accuracy {sampled_mean} drifted beyond ±{MEAN_ACCURACY_TOLERANCE} \
         of the full-batch mean {full_mean}"
    );
}

#[test]
fn scale_scenario_smoke_spec_is_deterministic_across_thread_counts() {
    // The smoke spec is what the benchmark's `--smoke` scale runs; pin it
    // to a single report at forced thread counts 1 and 4 (CI runs the whole
    // file under both ambient counts as well).
    let spec = ScaleSpec {
        n_nodes: 4_000,
        train_nodes: 500,
        epochs: 3,
        bias_block_rows: 128,
        max_attack_pos: 500,
        ..ScaleSpec::million()
    };
    let t1: ScaleReport =
        ppfr_linalg::parallel::with_forced_threads(1, || run_scale_scenario(&spec))
            .expect("smoke-scale spec is valid");
    let t4 = ppfr_linalg::parallel::with_forced_threads(4, || run_scale_scenario(&spec))
        .expect("smoke-scale spec is valid");
    assert_eq!(t1, t4, "scale scenario must not depend on thread count");
    assert!(
        t1.attack_auc > 0.5,
        "attack should beat chance: {}",
        t1.attack_auc
    );
    assert!(t1.bias.is_finite() && t1.bias >= 0.0);
}

/// The full million-node scenario: graph generation, streamed bias, capped
/// attack evaluation and 10⁵-node sampled training, with no dense `n × n`
/// object anywhere.  Minutes of release-build work — run explicitly with
/// `cargo test --release -p ppfr --test scale_layer -- --ignored`.
#[test]
#[ignore = "release-build big-graph smoke; run with -- --ignored"]
fn million_node_scenario_completes_without_dense_n_squared_state() {
    let report = run_scale_scenario(&ScaleSpec::million()).expect("million spec is valid");
    assert_eq!(report.n_nodes, 1_000_000);
    assert!(
        report.n_edges > 3_000_000,
        "million-node SBM lost most of its edges: {}",
        report.n_edges
    );
    assert!(report.bias.is_finite() && report.bias >= 0.0);
    assert!(
        report.attack_auc > 0.5,
        "block posteriors must leak edges at scale: {}",
        report.attack_auc
    );
    let (pos, neg) = report.attack_pairs;
    assert_eq!(pos, 20_000, "the positive cap must bind at 10⁶ nodes");
    assert_eq!(neg, pos);
    assert!(
        report.sampled_train_accuracy > 0.8,
        "sampled training failed to fit the 10⁵-node graph: {}",
        report.sampled_train_accuracy
    );
}
