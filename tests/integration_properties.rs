//! Property-based integration tests on the core invariants of the stack.

use ppfr_graph::{jaccard_similarity, similarity_laplacian, Graph};
use ppfr_linalg::{row_softmax, Matrix};
use ppfr_privacy::{auc_from_distances, edge_rand, lap_graph, pairwise_distance, DistanceKind};
use ppfr_qclp::{solve, QclpProblem, SolverOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random undirected graph with `n ∈ [3, 24]` nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(3 * n))
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

/// Strategy: a random probability matrix with rows summing to one.
fn arb_probs(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-4.0f64..4.0, rows * cols)
        .prop_map(move |logits| row_softmax(&Matrix::from_vec(rows, cols, logits)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn jaccard_similarity_is_symmetric_bounded_and_laplacian_is_psd(graph in arb_graph()) {
        let s = jaccard_similarity(&graph);
        for (i, j, v) in s.iter() {
            prop_assert!(v > 0.0 && v <= 1.0 + 1e-12, "S[{},{}] = {}", i, j, v);
            prop_assert!((s.get(j, i) - v).abs() < 1e-12);
        }
        let l = similarity_laplacian(&s);
        // Quadratic form with an arbitrary deterministic vector is non-negative.
        let x = Matrix::from_vec(
            graph.n_nodes(),
            1,
            (0..graph.n_nodes()).map(|i| ((i * 37 % 11) as f64) - 5.0).collect(),
        );
        let lx = l.matmul_dense(&x);
        let quad: f64 = (0..graph.n_nodes()).map(|i| x[(i, 0)] * lx[(i, 0)]).sum();
        prop_assert!(quad >= -1e-9, "Laplacian quadratic form negative: {}", quad);
    }

    #[test]
    fn all_distances_are_non_negative_symmetric_and_zero_on_identical_rows(
        probs in arb_probs(6, 3),
        i in 0usize..6,
        j in 0usize..6,
    ) {
        for kind in DistanceKind::ALL {
            let d_ij = pairwise_distance(kind, probs.row(i), probs.row(j));
            let d_ji = pairwise_distance(kind, probs.row(j), probs.row(i));
            prop_assert!(d_ij >= -1e-12, "{}: negative distance {}", kind.name(), d_ij);
            prop_assert!((d_ij - d_ji).abs() < 1e-9, "{}: asymmetric", kind.name());
            let d_ii = pairwise_distance(kind, probs.row(i), probs.row(i));
            prop_assert!(d_ii.abs() < 1e-9, "{}: d(x,x) = {}", kind.name(), d_ii);
        }
    }

    #[test]
    fn auc_is_always_a_probability(
        pos in proptest::collection::vec(0.0f64..2.0, 1..40),
        neg in proptest::collection::vec(0.0f64..2.0, 1..40),
    ) {
        let auc = auc_from_distances(&pos, &neg);
        prop_assert!((0.0..=1.0).contains(&auc), "AUC out of range: {}", auc);
        // Swapping the populations mirrors the AUC around 0.5.
        let swapped = auc_from_distances(&neg, &pos);
        prop_assert!((auc + swapped - 1.0).abs() < 1e-9);
    }

    #[test]
    fn qclp_solutions_are_always_feasible(
        bias in proptest::collection::vec(-1.0f64..1.0, 2..30),
        seed in 0u64..1000,
    ) {
        let n = bias.len();
        // Derive a pseudo-random utility vector from the seed for variety.
        let util: Vec<f64> = (0..n)
            .map(|i| (((seed as usize + i * 7919) % 200) as f64 / 100.0) - 1.0)
            .collect();
        let problem = QclpProblem { bias_influence: bias, util_influence: util, alpha: 0.9, beta: 0.1 };
        let solution = solve(&problem, &SolverOptions { max_iters: 300, ..Default::default() });
        prop_assert!(problem.is_feasible(&solution.weights, 1e-5));
        prop_assert!(solution.objective <= 1e-6, "objective must not exceed the zero start");
    }

    #[test]
    fn dp_mechanisms_always_return_valid_graphs(
        n in 6usize..40,
        eps in 0.2f64..8.0,
        seed in 0u64..500,
    ) {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let graph = Graph::from_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(seed);
        for noisy in [edge_rand(&graph, eps, &mut rng), lap_graph(&graph, eps, &mut rng)] {
            prop_assert_eq!(noisy.n_nodes(), n);
            for (u, v) in noisy.edges() {
                prop_assert!(u < n && v < n && u != v);
            }
        }
    }

    #[test]
    fn softmax_rows_always_sum_to_one(probs in arb_probs(5, 4)) {
        for r in 0..probs.rows() {
            let sum: f64 = probs.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(probs.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
